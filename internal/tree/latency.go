package tree

import (
	"fmt"
	"sort"
)

// AggregationLatency replays the converge-cast: links fire in slot order,
// each link forwarding its sender's accumulated token set to its receiver.
// It returns the number of distinct slots needed for the root to hold every
// node's token, and an error if the replay never completes (which means the
// ordering property is violated or the tree is broken).
//
// With a valid bi-tree this equals the schedule length — the paper's claim
// that aggregation completes in optimal O(log n) time for the Section 8
// trees.
func (t *BiTree) AggregationLatency() (int, error) {
	have := make(map[int]map[int]bool, len(t.Nodes))
	for _, v := range t.Nodes {
		have[v] = map[int]bool{v: true}
	}
	links := append([]TimedLink(nil), t.Up...)
	sort.SliceStable(links, func(i, j int) bool { return links[i].Slot < links[j].Slot })

	slots := 0
	lastSlot := -1 << 62
	for _, tl := range links {
		if tl.Slot != lastSlot {
			slots++
			lastSlot = tl.Slot
		}
		src, dst := tl.L.From, tl.L.To
		for tok := range have[src] {
			have[dst][tok] = true
		}
	}
	root := have[t.Root]
	for _, v := range t.Nodes {
		if !root[v] {
			return 0, fmt.Errorf("tree: aggregation incomplete: root missing token of node %d", v)
		}
	}
	return slots, nil
}

// BroadcastLatency replays the dissemination tree (dual links, reversed
// schedule): the root's token must reach every node. It returns the number
// of distinct slots used.
func (t *BiTree) BroadcastLatency() (int, error) {
	reached := make(map[int]bool, len(t.Nodes))
	reached[t.Root] = true
	links := t.Down()
	sort.SliceStable(links, func(i, j int) bool { return links[i].Slot < links[j].Slot })

	slots := 0
	lastSlot := -1 << 62
	for _, tl := range links {
		if tl.Slot != lastSlot {
			slots++
			lastSlot = tl.Slot
		}
		if reached[tl.L.From] {
			reached[tl.L.To] = true
		}
	}
	for _, v := range t.Nodes {
		if !reached[v] {
			return 0, fmt.Errorf("tree: broadcast incomplete: node %d unreached", v)
		}
	}
	return slots, nil
}

// PairLatency replays a node-to-node message from src to dst: up the
// aggregation schedule to the root, then down the dissemination schedule.
// It returns the total number of distinct slots consumed by the two phases.
// With a bi-tree this is at most twice the schedule length, which is the
// paper's "any pairwise communication in optimal O(log n) time".
func (t *BiTree) PairLatency(src, dst int) (int, error) {
	parent := t.Parent()
	onUpPath := map[int]bool{src: true}
	v := src
	for v != t.Root {
		p, ok := parent[v]
		if !ok {
			return 0, fmt.Errorf("tree: node %d has no path to root", v)
		}
		v = p
		onUpPath[v] = true
	}

	// Phase 1: follow the aggregation schedule; the message moves along its
	// up-path when its current holder's out-link fires.
	links := append([]TimedLink(nil), t.Up...)
	sort.SliceStable(links, func(i, j int) bool { return links[i].Slot < links[j].Slot })
	at := src
	upSlots := 0
	lastSlot := -1 << 62
	for _, tl := range links {
		if at == t.Root {
			break
		}
		if tl.Slot != lastSlot {
			upSlots++
			lastSlot = tl.Slot
		}
		if tl.L.From == at && onUpPath[tl.L.To] {
			at = tl.L.To
		}
	}
	if at != t.Root {
		return 0, fmt.Errorf("tree: message from %d never reached root", src)
	}

	// Phase 2: follow the dissemination schedule down to dst.
	down := t.Down()
	sort.SliceStable(down, func(i, j int) bool { return down[i].Slot < down[j].Slot })
	// Down-path of dst: root → ... → dst.
	onDownPath := map[int]bool{dst: true}
	v = dst
	for v != t.Root {
		v = parent[v]
		onDownPath[v] = true
	}
	at = t.Root
	downSlots := 0
	lastSlot = -1 << 62
	for _, tl := range down {
		if at == dst {
			break
		}
		if tl.Slot != lastSlot {
			downSlots++
			lastSlot = tl.Slot
		}
		if tl.L.From == at && onDownPath[tl.L.To] {
			at = tl.L.To
		}
	}
	if at != dst {
		return 0, fmt.Errorf("tree: message never reached destination %d", dst)
	}
	return upSlots + downSlots, nil
}

// Depth returns the maximum number of hops from any node to the root.
func (t *BiTree) Depth() int {
	parent := t.Parent()
	max := 0
	for _, v := range t.Nodes {
		d := 0
		for v != t.Root {
			v = parent[v]
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}
