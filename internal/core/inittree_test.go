package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

func uniformInstance(t testing.TB, seed int64, n int) *sinr.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := workload.UniformDensity(rng, n, 0.15)
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

// checkBiTree runs the full validator battery of Theorem 2 on an Init
// result.
func checkBiTree(t *testing.T, in *sinr.Instance, res *InitResult) {
	t.Helper()
	bt := res.Tree
	if err := bt.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if err := bt.ValidateOrdering(); err != nil {
		t.Fatalf("ordering invalid: %v", err)
	}
	if !bt.StronglyConnected() {
		t.Fatal("tree not strongly connected")
	}
	if err := bt.ValidatePerSlotFeasible(in); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	if _, err := bt.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay: %v", err)
	}
	if _, err := bt.BroadcastLatency(); err != nil {
		t.Fatalf("broadcast replay: %v", err)
	}
}

func TestInitSmallLine(t *testing.T) {
	in := sinr.MustInstance(workload.ExponentialChain(8, 2), sinr.DefaultParams())
	res, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree.Up) != 7 {
		t.Fatalf("links = %d, want 7", len(res.Tree.Up))
	}
	checkBiTree(t, in, res)
	if res.SlotsUsed <= 0 {
		t.Error("SlotsUsed not recorded")
	}
}

func TestInitUniform(t *testing.T) {
	in := uniformInstance(t, 2, 64)
	res, err := Init(context.Background(), in, InitConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkBiTree(t, in, res)
	if got := len(res.Tree.Up); got != 63 {
		t.Fatalf("links = %d, want 63", got)
	}
}

func TestInitSingleParticipant(t *testing.T) {
	in := uniformInstance(t, 3, 10)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1, Participants: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Root != 4 || len(res.Tree.Up) != 0 {
		t.Errorf("single-participant tree: root %d, %d links", res.Tree.Root, len(res.Tree.Up))
	}
}

func TestInitSubsetParticipants(t *testing.T) {
	in := uniformInstance(t, 4, 40)
	parts := []int{0, 3, 7, 11, 18, 25, 31, 39}
	res, err := Init(context.Background(), in, InitConfig{Seed: 5, Participants: parts})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree.Nodes) != len(parts) {
		t.Fatalf("spans %d nodes, want %d", len(res.Tree.Nodes), len(parts))
	}
	checkBiTree(t, in, res)
	// Non-participants must not appear in any link.
	inSet := map[int]bool{}
	for _, v := range parts {
		inSet[v] = true
	}
	for _, tl := range res.Tree.Up {
		if !inSet[tl.L.From] || !inSet[tl.L.To] {
			t.Fatalf("link %v involves non-participant", tl.L)
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	in := uniformInstance(t, 5, 48)
	a, err := Init(context.Background(), in, InitConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Init(context.Background(), in, InitConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree.Root != b.Tree.Root || len(a.Tree.Up) != len(b.Tree.Up) ||
		a.SlotsUsed != b.SlotsUsed {
		t.Fatal("Init not deterministic for fixed seed")
	}
	for i := range a.Tree.Up {
		if a.Tree.Up[i] != b.Tree.Up[i] {
			t.Fatalf("link %d differs", i)
		}
	}
	c, err := Init(context.Background(), in, InitConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Different seed should (overwhelmingly) give a different tree.
	same := a.Tree.Root == c.Tree.Root && len(a.Tree.Up) == len(c.Tree.Up)
	if same {
		for i := range a.Tree.Up {
			if a.Tree.Up[i] != c.Tree.Up[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: different seeds produced identical trees (possible but unlikely)")
	}
}

func TestInitWithDropInjection(t *testing.T) {
	in := uniformInstance(t, 6, 32)
	res, err := Init(context.Background(), in, InitConfig{Seed: 3, DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkBiTree(t, in, res)
}

func TestInitPermissiveGate(t *testing.T) {
	in := uniformInstance(t, 7, 32)
	res, err := Init(context.Background(), in, InitConfig{Seed: 3, StrictGate: false})
	// StrictGate default is true; explicit false is the permissive variant.
	if err != nil {
		t.Fatal(err)
	}
	checkBiTree(t, in, res)
}

func TestInitErrors(t *testing.T) {
	in := uniformInstance(t, 8, 8)
	if _, err := Init(context.Background(), in, InitConfig{Participants: []int{}}); err == nil {
		t.Error("empty participants accepted")
	}
	if _, err := Init(context.Background(), in, InitConfig{Participants: []int{99}}); err == nil {
		t.Error("out-of-range participant accepted")
	}
	if _, err := Init(context.Background(), in, InitConfig{Participants: []int{1, 1}}); err == nil {
		t.Error("duplicate participant accepted")
	}
	if _, err := Init(context.Background(), in, InitConfig{DropProb: 2}); err == nil {
		t.Error("bad drop probability accepted")
	}
}

func TestInitDegreeBound(t *testing.T) {
	// Theorem 7: max degree O(log n) w.h.p. Use a generous constant.
	in := uniformInstance(t, 9, 128)
	res, err := Init(context.Background(), in, InitConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := res.Tree.MaxDegree()
	bound := int(8 * math.Log2(128))
	if maxDeg > bound {
		t.Errorf("max degree %d exceeds %d", maxDeg, bound)
	}
}

func TestInitSlotsScaleWithLadder(t *testing.T) {
	// A high-Δ chain must use more slots than a compact grid of the same
	// size (the log Δ factor of Theorem 2).
	chain := sinr.MustInstance(workload.ChainForDelta(32, 1<<16), sinr.DefaultParams())
	grid := sinr.MustInstance(workload.GridPoints(6, 6, 2)[:32], sinr.DefaultParams())
	resChain, err := Init(context.Background(), chain, InitConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	resGrid, err := Init(context.Background(), grid, InitConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resChain.LadderRounds <= resGrid.LadderRounds {
		t.Fatalf("ladder rounds: chain %d vs grid %d", resChain.LadderRounds, resGrid.LadderRounds)
	}
	if resChain.SlotsUsed <= resGrid.SlotsUsed {
		t.Errorf("slots: chain %d vs grid %d — expected chain to pay the log Δ factor",
			resChain.SlotsUsed, resGrid.SlotsUsed)
	}
}

func TestInitStrayCleanup(t *testing.T) {
	// Strays can occur but must never corrupt the tree; the count is
	// reported. Run several seeds and just assert validity every time.
	in := uniformInstance(t, 10, 48)
	for seed := int64(0); seed < 5; seed++ {
		res, err := Init(context.Background(), in, InitConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkBiTree(t, in, res)
		if res.StrayLinks < 0 {
			t.Fatal("negative stray count")
		}
	}
}
