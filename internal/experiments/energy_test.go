package experiments

import "testing"

func TestE13Energy(t *testing.T) {
	runAndCheck(t, E13Energy(Quick()), 2)
}

func TestE14PhysicalEpoch(t *testing.T) {
	runAndCheck(t, E14PhysicalEpoch(Quick()), 2)
}
