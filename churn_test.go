package sinrconn

// Tests for the continuous-churn engine (churn.go). The central gate is
// metamorphic: a tree maintained by churn-then-repair must satisfy the
// exact invariant battery a from-scratch construction satisfies — after
// EVERY event (WithChurnAudit) — and its final membership must admit a
// clean rebuild (the "rebuild on survivors" oracle).

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sinrconn/internal/workload"
)

// mixedTrace is the reference workload: all five event kinds enabled.
func mixedTrace(seed int64, events int) TraceSpec {
	return TraceSpec{
		Seed:       seed,
		Events:     events,
		JoinRate:   1,
		FailRate:   1.2,
		BurstRate:  0.25,
		ShowerRate: 0.5,
		MoveRate:   1,
		Mobility:   MobilityWaypoint,
	}
}

// checkChurnReport asserts internal consistency of a finished run.
func checkChurnReport(t *testing.T, trace TraceSpec, rep *ChurnReport) {
	t.Helper()
	st := rep.Stats
	if st.Events != trace.Events {
		t.Fatalf("processed %d events, trace has %d", st.Events, trace.Events)
	}
	if got := st.Joins + st.DampedJoins + st.Fails + st.Bursts + st.Showers + st.Moves; got != st.Events {
		t.Fatalf("kind counters sum to %d, want %d: %+v", got, st.Events, st)
	}
	if st.SlotsUsed <= 0 || st.PeakScheduleLength <= 0 {
		t.Fatalf("implausible channel accounting: %+v", st)
	}
	if err := rep.Final.Tree.Verify(); err != nil {
		t.Fatalf("final tree: %v", err)
	}
	if rep.Final.Tree.NumNodes > 1 && rep.Final.Metrics.AggregationLatency <= 0 {
		t.Fatalf("final latency not filled: %+v", rep.Final.Metrics)
	}
	for _, e := range rep.Soft {
		if !errors.Is(e, ErrDamped) && !errors.Is(e, ErrNotConverged) {
			t.Fatalf("untyped soft error: %v", e)
		}
	}
}

func TestChurnBasic(t *testing.T) {
	nw, err := Open(uniformPoints(50, 48))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	trace := mixedTrace(7, 40)
	rep, err := nw.Churn(context.Background(), trace, WithChurnAudit(true))
	if err != nil {
		t.Fatal(err)
	}
	checkChurnReport(t, trace, rep)
	if rep.Stats.IncrementalRepairs == 0 {
		t.Fatal("no event was resolved incrementally")
	}
	// The final result is live on a derived Network: an epoch must work.
	n := rep.Final.Tree.inst.Len()
	vals := make([]int64, n)
	var want int64
	for _, v := range rep.Final.Tree.inner.Nodes {
		vals[v] = int64(v)
		want += int64(v)
	}
	out, err := rep.Final.Aggregate(vals, SumAgg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != want {
		t.Fatalf("post-churn aggregate = %d, want %d", out.Value, want)
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() *ChurnReport {
		nw, err := Open(uniformPoints(51, 40))
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		rep, err := nw.Churn(context.Background(), mixedTrace(3, 30))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	at, bt := a.Final.Tree, b.Final.Tree
	if at.Root != bt.Root || len(at.Up) != len(bt.Up) {
		t.Fatalf("tree shape diverged: root %d/%d, %d/%d links",
			at.Root, bt.Root, len(at.Up), len(bt.Up))
	}
	for i := range at.Up {
		if at.Up[i] != bt.Up[i] {
			t.Fatalf("link %d diverged: %+v vs %+v", i, at.Up[i], bt.Up[i])
		}
	}
}

// TestChurnMetamorphicGate runs the scenario matrix through the engine
// with the per-event audit on, then rebuilds from scratch over the final
// survivors and checks the rebuilt tree offers the same guarantees
// (spans the same membership, passes the same validators). Full mode:
// every matrix workload × 3 seeds; short mode: 3 workloads × 1 seed.
func TestChurnMetamorphicGate(t *testing.T) {
	specs := workload.Matrix()
	seeds := []int64{1, 2, 3}
	n, events := 56, 30
	if testing.Short() {
		specs, seeds, n, events = specs[:3], seeds[:1], 40, 18
	}
	for _, spec := range specs {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", spec.Name, seed), func(t *testing.T) {
				nw, err := Open(facadePoints(spec, seed, n))
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				trace := mixedTrace(seed*101, events)
				rep, err := nw.Churn(context.Background(), trace, WithChurnAudit(true))
				if err != nil {
					t.Fatal(err)
				}
				checkChurnReport(t, trace, rep)
				churnRebuildOracle(t, rep)
			})
		}
	}
}

// churnRebuildOracle rebuilds from scratch over the churned run's final
// survivor positions and checks equivalence of guarantees: the rebuild
// must span exactly the survivors and pass the full validator battery,
// just as the churned tree already did.
func churnRebuildOracle(t *testing.T, rep *ChurnReport) {
	t.Helper()
	inst, inner := rep.Final.Tree.inst, rep.Final.Tree.inner
	pts := make([]Point, 0, len(inner.Nodes))
	for _, v := range inner.Nodes {
		p := inst.Point(v)
		pts = append(pts, Point{X: p.X, Y: p.Y})
	}
	fresh, err := Open(pts)
	if err != nil {
		t.Fatalf("rebuild open: %v", err)
	}
	defer fresh.Close()
	var res *Result
	for attempt := int64(0); ; attempt++ {
		res, err = fresh.Run(context.Background(), PipelineInit, WithSeed(1000+attempt))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrNotConverged) || attempt >= 3 {
			t.Fatalf("rebuild on survivors: %v", err)
		}
	}
	if res.Tree.NumNodes != len(inner.Nodes) {
		t.Fatalf("rebuild spans %d nodes, churned tree %d", res.Tree.NumNodes, len(inner.Nodes))
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatalf("rebuild verify: %v", err)
	}
}

func TestChurnCityGridMobility(t *testing.T) {
	nw, err := Open(uniformPoints(52, 40))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	trace := TraceSpec{
		Seed: 9, Events: 25,
		JoinRate: 0.5, FailRate: 0.8, MoveRate: 2,
		Mobility: MobilityCityGrid, MobilitySpeed: 2,
	}
	rep, err := nw.Churn(context.Background(), trace, WithChurnAudit(true))
	if err != nil {
		t.Fatal(err)
	}
	checkChurnReport(t, trace, rep)
	if rep.Stats.Moves == 0 {
		t.Fatal("city-grid trace produced no move events")
	}
}

// TestChurnFlapDamping drives a deployment small enough that an
// aggressive damper quarantines it after the first failures: subsequent
// joins must be refused with the typed ErrDamped (surfaced in Soft, not
// fatal), members must be muted during repairs, and the run must still
// complete — damping bounds repair work instead of livelocking on the
// flapping region.
func TestChurnFlapDamping(t *testing.T) {
	nw, err := Open(uniformPoints(53, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	trace := TraceSpec{
		Seed: 5, Events: 40,
		JoinRate: 1.5, FailRate: 2, BurstRate: 0.5,
		BurstRadius: 6,
	}
	rep, err := nw.Churn(context.Background(), trace,
		WithFlapDamping(2, 1e9, 1e9, 100)) // one region, trips forever
	if err != nil {
		t.Fatal(err)
	}
	checkChurnReport(t, trace, rep)
	if rep.Stats.DampedJoins == 0 {
		t.Fatalf("no join was ever refused: %+v", rep.Stats)
	}
	damped := 0
	for _, e := range rep.Soft {
		if errors.Is(e, ErrDamped) {
			damped++
		}
	}
	if damped != rep.Stats.DampedJoins {
		t.Fatalf("%d ErrDamped soft errors for %d damped joins", damped, rep.Stats.DampedJoins)
	}
	if rep.Stats.MutedPeak == 0 {
		t.Fatalf("quarantine never muted anyone: %+v", rep.Stats)
	}
}

func TestChurnDampingDisabled(t *testing.T) {
	nw, err := Open(uniformPoints(54, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	trace := TraceSpec{Seed: 5, Events: 30, JoinRate: 1.5, FailRate: 2, BurstRate: 0.5, BurstRadius: 6}
	rep, err := nw.Churn(context.Background(), trace, WithFlapDamping(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.DampedJoins != 0 || rep.Stats.MutedPeak != 0 {
		t.Fatalf("disabled damper still acted: %+v", rep.Stats)
	}
}

func TestChurnValidation(t *testing.T) {
	nw, err := Open(uniformPoints(55, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx := context.Background()
	cases := []struct {
		name  string
		trace TraceSpec
		opts  []ChurnOption
	}{
		{"no events", TraceSpec{Seed: 1, FailRate: 1}, nil},
		{"all-zero rates", TraceSpec{Seed: 1, Events: 5}, nil},
		{"negative rate", TraceSpec{Seed: 1, Events: 5, FailRate: -1}, nil},
		{"move without mobility", TraceSpec{Seed: 1, Events: 5, MoveRate: 1}, nil},
		{"drift budget ≤ 1", TraceSpec{Seed: 1, Events: 5, FailRate: 1},
			[]ChurnOption{WithDriftBudget(1)}},
		{"zero retries", TraceSpec{Seed: 1, Events: 5, FailRate: 1},
			[]ChurnOption{WithChurnRetries(0)}},
		{"negative damping", TraceSpec{Seed: 1, Events: 5, FailRate: 1},
			[]ChurnOption{WithFlapDamping(-1, 0, 0, 0)}},
	}
	for _, c := range cases {
		if _, err := nw.Churn(ctx, c.trace, c.opts...); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestChurnCanceledContext(t *testing.T) {
	nw, err := Open(uniformPoints(56, 24))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.Churn(ctx, mixedTrace(1, 10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled churn returned %v", err)
	}
}

func TestChurnClosedNetwork(t *testing.T) {
	nw, err := Open(uniformPoints(57, 16))
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	if _, err := nw.Churn(context.Background(), mixedTrace(1, 5)); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("closed network churn returned %v", err)
	}
}

func TestMobilityModelString(t *testing.T) {
	for m, want := range map[MobilityModel]string{
		MobilityNone: "none", MobilityWaypoint: "waypoint", MobilityCityGrid: "citygrid",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

// --- Repair edge regressions (session API) ---

// TestRepairDuplicateFailures: a failure list naming the same node twice
// must behave exactly like the deduplicated list.
func TestRepairDuplicateFailures(t *testing.T) {
	pts := uniformPoints(58, 32)
	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	victims := []int{3, 7}
	if res.Tree.Root == 3 || res.Tree.Root == 7 {
		victims = []int{4, 8}
	}
	dup := []int{victims[0], victims[1], victims[0], victims[0]}
	repaired, err := res.RepairFailures(dup, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.NumNodes != 30 {
		t.Fatalf("duplicated failure list removed %d nodes, want 2", 32-repaired.Tree.NumNodes)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairAfterJoinRemapping: nodes joined through a derived Network
// keep their (remapped) indices; failing a mix of original and joined
// nodes through the derived handle must remove exactly those nodes.
func TestRepairAfterJoinRemapping(t *testing.T) {
	nw, err := Open(uniformPoints(59, 24))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx := context.Background()
	res, err := nw.Run(ctx, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := nw.Join(ctx, res, []Point{{X: 300, Y: 0}, {X: 303, Y: 2}, {X: 306, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Tree.NumNodes != 27 {
		t.Fatalf("grown tree spans %d nodes", grown.Tree.NumNodes)
	}
	// Fail one original node and one joined node (index ≥ 24) through the
	// derived handle; indices must be interpreted in the merged space.
	orig := 5
	if grown.Tree.Root == orig {
		orig = 6
	}
	joined := 25
	if grown.Tree.Root == joined {
		joined = 26
	}
	repaired, err := grown.Network().Repair(ctx, grown, []int{orig, joined})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.NumNodes != 25 {
		t.Fatalf("repaired tree spans %d nodes, want 25", repaired.Tree.NumNodes)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	par := repaired.Tree.Parent()
	for _, v := range []int{orig, joined} {
		if _, ok := par[v]; ok || repaired.Tree.Root == v {
			t.Fatalf("failed node %d still in tree", v)
		}
	}
	// The OTHER joined nodes survive with their merged-space indices.
	seen := map[int]bool{repaired.Tree.Root: true}
	for c := range par {
		seen[c] = true
	}
	for v := 24; v < 27; v++ {
		if v == joined {
			continue
		}
		if !seen[v] {
			t.Fatalf("surviving joined node %d dropped by repair", v)
		}
	}
}

// TestRepairChainThroughDerived: repair applied on a result that is
// itself the output of a repair on a join — three generations of derived
// Networks — keeps indices and structure coherent.
func TestRepairChainThroughDerived(t *testing.T) {
	nw, err := Open(uniformPoints(60, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx := context.Background()
	res, err := nw.Run(ctx, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := nw.Join(ctx, res, []Point{{X: 250, Y: 0}, {X: 253, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := 20 // first joined node
	if g1.Tree.Root == v1 {
		v1 = 21
	}
	g2, err := g1.Network().Repair(ctx, g1, []int{v1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := 2
	if g2.Tree.Root == v2 {
		v2 = 3
	}
	g3, err := g2.Network().Repair(ctx, g2, []int{v2})
	if err != nil {
		t.Fatal(err)
	}
	if g3.Tree.NumNodes != 20 {
		t.Fatalf("generation-3 tree spans %d nodes, want 20", g3.Tree.NumNodes)
	}
	if err := g3.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}
