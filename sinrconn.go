package sinrconn

import (
	"context"
	"errors"

	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// Point is a node location in the plane. The paper's normalization (minimum
// pairwise distance 1) is required; Open enforces it unless
// WithAutoNormalize is set.
type Point struct {
	X, Y float64
}

// Link is a directed transmission request between node indices.
type Link struct {
	From, To int
}

// ScheduledLink is a link with its schedule slot and transmission power.
type ScheduledLink struct {
	Link
	// Slot is the 1-based schedule slot.
	Slot int
	// Power is the sender's transmission power in that slot.
	Power float64
}

// PhysParams are the SINR physical constants.
type PhysParams struct {
	// Alpha is the path-loss exponent (≥ 2).
	Alpha float64
	// Beta is the SINR decoding threshold.
	Beta float64
	// Noise is the ambient noise floor.
	Noise float64
}

// DefaultPhysParams returns α = 3, β = 1.5, N = 1.
func DefaultPhysParams() PhysParams {
	p := sinr.DefaultParams()
	return PhysParams{Alpha: p.Alpha, Beta: p.Beta, Noise: p.Noise}
}

// Options configures a legacy one-shot pipeline call.
//
// Deprecated: Options predates the session API and cannot express an
// explicit zero (0 always means "use the default"). Open a *Network with
// functional options (WithPhys, WithSeed, WithWorkers, WithDropProb,
// WithAutoNormalize, WithBroadcastProb, WithRho) instead.
type Options struct {
	// Params are the physical constants; zero value means defaults.
	Params PhysParams
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds simulator parallelism (0 = NumCPU).
	Workers int
	// DropProb injects reception failures (fading) in [0, 1).
	DropProb float64
	// AutoNormalize rescales the input so the minimum pairwise distance is
	// 1 instead of rejecting un-normalized input.
	AutoNormalize bool
	// BroadcastProb overrides the Section 6 broadcast probability p.
	BroadcastProb float64
	// Rho overrides the low-degree cap for TreeViaCapacity.
	Rho int
}

func (o Options) params() sinr.Params {
	p := sinr.DefaultParams()
	if o.Params.Alpha != 0 {
		p.Alpha = o.Params.Alpha
	}
	if o.Params.Beta != 0 {
		p.Beta = o.Params.Beta
	}
	if o.Params.Noise != 0 {
		p.Noise = o.Params.Noise
	}
	return p
}

// settings converts legacy Options to resolved session settings verbatim
// (no option-level validation, preserving the legacy pass-through semantics
// where out-of-range knobs fall back to defaults inside internal/core).
func (o Options) settings() settings {
	return settings{
		phys:          o.params(),
		seed:          o.Seed,
		workers:       o.Workers,
		drop:          o.DropProb,
		autoNormalize: o.AutoNormalize,
		broadcastProb: o.BroadcastProb,
		rho:           o.Rho,
		cacheSize:     maxCachedResults,
	}
}

// standalone builds the pool-less one-shot Network backing a deprecated
// free-function call: engines spawn and release their own workers per run,
// exactly as the pre-session code did, so wrapper outputs stay
// bit-identical while still flowing through the single Network code path.
func standalone(pts []Point, opt Options) (*Network, error) {
	return newNetwork(pts, opt.settings())
}

// Metrics reports the cost of a pipeline run.
type Metrics struct {
	// SlotsUsed is the total channel time (simulator slots) the distributed
	// construction consumed.
	SlotsUsed int
	// ScheduleLength is the number of slots in the final link schedule.
	ScheduleLength int
	// Rounds is Init's round count (initial construction only).
	Rounds int
	// Iterations is TreeViaCapacity's iteration count (Section 8 only).
	Iterations int
	// Upsilon is the instance's Υ = log log Δ + log n.
	Upsilon float64
	// Delta is the instance's max/min distance ratio.
	Delta float64
	// AggregationLatency and BroadcastLatency are replay-verified slot
	// counts for converge-cast and broadcast on the bi-tree.
	AggregationLatency int
	BroadcastLatency   int
	// Energy is the total transmission energy (sum of powers over all
	// transmissions) the construction spent on the channel, including
	// rescheduling and selection-protocol traffic for the Section 7/8
	// pipelines.
	Energy float64
}

// BiTree is the public view of a constructed bi-tree.
type BiTree struct {
	// Root is the converge-cast destination.
	Root int
	// Up lists the aggregation links (node → parent), scheduled leaf-first.
	Up []ScheduledLink
	// NumNodes is the number of nodes spanned.
	NumNodes int

	inner *tree.BiTree
	inst  *sinr.Instance
	// ff is the far-field plan the construction ran under (flat grid or
	// quadtree; nil = exact); ffAdaptive whether its engines selected
	// exact/far per slot. Operations on the result inherit both.
	ff         sinr.Far
	ffAdaptive bool
}

// Parent returns each non-root node's parent.
func (b *BiTree) Parent() map[int]int { return b.inner.Parent() }

// MaxDegree returns the maximum node degree in the tree.
func (b *BiTree) MaxDegree() int { return b.inner.MaxDegree() }

// Depth returns the maximum hop distance to the root.
func (b *BiTree) Depth() int { return b.inner.Depth() }

// PairLatency replays a node-to-node message (up the aggregation schedule,
// down the dissemination schedule) and returns the slots consumed.
func (b *BiTree) PairLatency(src, dst int) (int, error) {
	return b.inner.PairLatency(src, dst)
}

// Verify re-checks every structural property: spanning tree shape, strong
// connectivity, aggregation ordering, and per-slot SINR feasibility of the
// schedule. It is cheap insurance for downstream users. A tree built under
// WithMaxRelError(ε > 0) is validated under the matching (1±ε) guard band
// at the β cut: a schedule that is exactly feasible is never rejected, and
// a failure certifies a slot whose exact SINR falls below β — including a
// link the approximate channel accepted inside its error band, which is a
// genuinely sub-β link being reported rather than silently passed (the
// construction's SafePower margins keep decisions away from the cut in
// practice). See sinr.Instance.SINRFeasibleFarBuf for the exact
// completeness/soundness contract.
func (b *BiTree) Verify() error {
	if err := b.inner.Validate(); err != nil {
		return err
	}
	if !b.inner.StronglyConnected() {
		return errors.New("sinrconn: tree not strongly connected")
	}
	if err := b.inner.ValidateOrdering(); err != nil {
		return err
	}
	return b.inner.ValidatePerSlotFeasibleFar(b.inst, b.ff)
}

// Result bundles a constructed tree with its metrics. Results returned by
// a Network (directly or through the deprecated wrappers) are bound to
// their handle: joins, repairs, and physical epochs reuse its instances
// and worker pool. Results are immutable — every operation returns a fresh
// one — so a memoized Result may be shared by concurrent callers.
type Result struct {
	Tree    *BiTree
	Metrics Metrics

	nw *Network
}

// Network returns the session handle this result is bound to. For results
// grown by Join it is a derived handle over the enlarged point set (sharing
// the original's worker pool).
func (r *Result) Network() *Network { return r.nw }

// ErrNotNormalized reports input whose minimum pairwise distance is below 1
// when normalization is off (WithAutoNormalize at Open; joins never
// renormalize). Test with errors.Is.
var ErrNotNormalized = errors.New("sinrconn: minimum pairwise distance below 1 (set AutoNormalize)")

func publicTree(in *sinr.Instance, bt *tree.BiTree, ff sinr.Far, ffAdaptive bool) *BiTree {
	out := &BiTree{
		Root:       bt.Root,
		NumNodes:   len(bt.Nodes),
		inner:      bt,
		inst:       in,
		ff:         ff,
		ffAdaptive: ffAdaptive,
	}
	for _, tl := range bt.Up {
		out.Up = append(out.Up, ScheduledLink{
			Link:  Link{From: tl.L.From, To: tl.L.To},
			Slot:  tl.Slot,
			Power: tl.Power,
		})
	}
	return out
}

func fillLatencies(m *Metrics, bt *tree.BiTree) error {
	agg, err := bt.AggregationLatency()
	if err != nil {
		return err
	}
	bc, err := bt.BroadcastLatency()
	if err != nil {
		return err
	}
	m.AggregationLatency = agg
	m.BroadcastLatency = bc
	return nil
}

// buildPipeline is the shared body of the deprecated one-shot wrappers.
func buildPipeline(pts []Point, opt Options, p Pipeline) (*Result, error) {
	nw, err := standalone(pts, opt)
	if err != nil {
		return nil, err
	}
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalence
	return nw.Run(context.Background(), p)
}

// BuildInitialBiTree runs the Section 6 construction (Theorem 2).
//
// Deprecated: use Open followed by (*Network).Run(ctx, PipelineInit); the
// handle amortizes geometry validation and the gain table across runs and
// honors context cancellation. This wrapper re-pays both on every call.
func BuildInitialBiTree(pts []Point, opt Options) (*Result, error) {
	return buildPipeline(pts, opt, PipelineInit)
}

// RescheduleMeanPower runs Section 6 then re-schedules the tree under mean
// power with the distributed scheduler (Theorem 3). The returned schedule
// does not necessarily satisfy the bi-tree ordering property, matching the
// paper's caveat; aggregation/broadcast latencies are therefore not filled.
//
// Deprecated: use Open followed by (*Network).Run(ctx,
// PipelineRescheduleMean).
func RescheduleMeanPower(pts []Point, opt Options) (*Result, error) {
	return buildPipeline(pts, opt, PipelineRescheduleMean)
}

// BuildBiTreeMeanPower runs TreeViaCapacity with Υ-sampled mean-power
// selection (Theorem 4, second half: O(Υ·log n) schedule slots).
//
// Deprecated: use Open followed by (*Network).Run(ctx, PipelineTVCMean).
func BuildBiTreeMeanPower(pts []Point, opt Options) (*Result, error) {
	return buildPipeline(pts, opt, PipelineTVCMean)
}

// BuildBiTreeArbitraryPower runs TreeViaCapacity with Distr-Cap selection
// and computed per-link powers (Theorem 4, first half: O(log n) schedule
// slots).
//
// Deprecated: use Open followed by (*Network).Run(ctx,
// PipelineTVCArbitrary).
func BuildBiTreeArbitraryPower(pts []Point, opt Options) (*Result, error) {
	return buildPipeline(pts, opt, PipelineTVCArbitrary)
}
