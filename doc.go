// Package sinrconn is a Go implementation of "Distributed Connectivity of
// Wireless Networks" (Halldórsson & Mitra, PODC 2012): distributed
// algorithms that, starting from identical wireless nodes with no
// infrastructure, build a strongly connected communication structure (a
// bi-tree: converge-cast plus dissemination tree) and schedule it
// efficiently under the SINR physical interference model.
//
// The primary API is session-oriented: Open validates a deployment once and
// returns a long-lived *Network owning the physics state (the O(n²) gain
// table) and a persistent simulator worker pool; Run executes any of the
// paper's pipelines against that shared state with context cancellation,
// and RunMatrix fans one handle out across pipelines × seeds × physical
// parameters with bounded concurrency. The pipelines mirror the paper's
// three main theorems:
//
//   - PipelineInit — the Section 6 construction (Theorem 2): a bi-tree in
//     O(log Δ · log n) channel slots using per-round uniform power.
//   - PipelineRescheduleMean — Section 7 (Theorem 3): the same tree
//     re-scheduled under mean power with distributed contention
//     resolution, removing the log Δ factor from the schedule.
//   - PipelineTVCMean / PipelineTVCArbitrary — Section 8 (Theorem 4): the
//     interleaved TreeViaCapacity constructions whose final schedules match
//     the best centralized bounds — O(Υ·log n) slots with oblivious mean
//     power and O(log n) slots with computed powers.
//
// All pipelines run on an exact slotted SINR channel simulator; results are
// deterministic for a fixed seed (and therefore memoized per handle). The
// free functions (BuildInitialBiTree & co.) predate the session API and
// remain as deprecated one-shot wrappers, bit-identical to their Network
// counterparts. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduction of the paper's claims.
package sinrconn
