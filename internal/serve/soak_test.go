package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// soakTransport drives the handler in-process: no sockets, so goroutine
// accounting sees only the daemon's own work.
type soakTransport struct{ h http.Handler }

func (t soakTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// TestServeSoak is the concurrency gate: ≥32 concurrent clients fire ≥500
// requests mixing Run, Join, and Repair, with deliberate mid-flight
// cancellations and a drain flipped mid-soak, all race-detector clean, and
// the daemon leaks zero goroutines (before/after runtime.NumGoroutine
// settle). Run it with -race (the CI daemon lane does).
func TestServeSoak(t *testing.T) {
	clients, perClient := 32, 16 // 512 requests
	if testing.Short() {
		clients, perClient = 8, 8
	}

	// Record the baseline before the daemon exists.
	settleGoroutines(t)

	srv := New(Config{})
	hc := &http.Client{Transport: soakTransport{srv.Handler()}}
	base := "http://soak.invalid"

	post := func(ctx context.Context, path string, in, out any) (int, error) {
		body, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if out != nil && resp.StatusCode < 400 {
			if err := json.Unmarshal(raw, out); err != nil {
				return resp.StatusCode, err
			}
		}
		if resp.StatusCode >= 400 {
			return resp.StatusCode, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
		return resp.StatusCode, nil
	}

	ctx := context.Background()
	pts := testPoints(42, 28)
	var (
		wg        sync.WaitGroup
		requests  atomic.Int64
		canceled  atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err)
	}

	// Open every session before any client starts issuing requests: the
	// mid-soak drain must land on already-open sessions (a fast client can
	// otherwise flip the drain before slower goroutines have opened, and
	// their 503s would be correct refusals, not failures).
	sbases := make([]string, clients)
	for c := range sbases {
		var open OpenResponse
		if _, err := post(ctx, "/v1/sessions", OpenRequest{Points: pts}, &open); err != nil {
			t.Fatal(err)
		}
		sbases[c] = "/v1/sessions/" + open.SessionID
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + idx)))
			sbase := sbases[idx]
			var lastResult string
			for i := 0; i < perClient; i++ {
				requests.Add(1)
				switch {
				case i%5 == 4:
					// Mid-flight cancellation: a microscopic deadline.
					cctx, cancel := context.WithTimeout(ctx, 50*time.Microsecond)
					_, err := post(cctx, sbase+"/run", RunRequest{
						Pipeline: "init-uniform",
						Options:  OptionsJSON{Seed: int64(rng.Intn(64) + 1)},
					}, nil)
					cancel()
					if err != nil {
						canceled.Add(1)
					}
				case i%5 == 2 && lastResult != "":
					var resp RunResponse
					x := 60 + float64(idx)*4 + float64(i)
					if _, err := post(ctx, sbase+"/join", JoinRequest{
						ResultID: lastResult,
						Points:   [][2]float64{{x, 60}, {x + 1.5, 61}},
					}, &resp); err != nil {
						fail(err)
					} else {
						lastResult = resp.ResultID
					}
				case i%5 == 3 && lastResult != "":
					var resp RunResponse
					if _, err := post(ctx, sbase+"/repair", RepairRequest{
						ResultID: lastResult,
						Failed:   []int{rng.Intn(20)},
					}, &resp); err != nil {
						fail(err)
					} else {
						lastResult = resp.ResultID
					}
				default:
					var resp RunResponse
					if _, err := post(ctx, sbase+"/run", RunRequest{
						Pipeline: "init-uniform",
						Options:  OptionsJSON{Seed: int64(rng.Intn(8) + 1)},
					}, &resp); err != nil {
						fail(err)
					} else {
						lastResult = resp.ResultID
					}
				}
				// Halfway through, one client flips the drain: existing
				// sessions must ride it out untouched.
				if idx == 0 && i == perClient/2 {
					srv.Drain()
				}
			}
			req, _ := http.NewRequest(http.MethodDelete, base+sbase, nil)
			if resp, err := hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d request failures, first: %v", n, firstFail.Load())
	}
	if got := requests.Load(); got < int64(clients*perClient) {
		t.Fatalf("issued %d requests, want ≥ %d", got, clients*perClient)
	}
	if !srv.Draining() {
		t.Fatal("drain flag lost mid-soak")
	}
	// New sessions must be refused post-drain.
	if code, err := post(ctx, "/v1/sessions", OpenRequest{Points: pts}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("open after drain: status %d (%v), want 503", code, err)
	}
	t.Logf("soak: %d requests, %d canceled, cache %+v", requests.Load(), canceled.Load(), srv.cacheStats())

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Goroutine settle: everything the daemon spawned (worker pools,
	// singleflight leaders, canceled runs) must be gone — enforced by
	// the settleGoroutines cleanup registered up top.
}
