package main

import (
	"io"
	"testing"
)

// TestRunSmoke compiles and runs the example end to end on a tiny field
// ("exit 0" = run returns nil).
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 16, 2, 5, 24, 3); err != nil {
		t.Fatal(err)
	}
}
