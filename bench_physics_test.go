package sinrconn

// BenchmarkSlotPhysics measures the raw cost of one simulator slot — the
// global hot path every protocol in this repository runs on — at production
// scales. A quarter of the nodes transmit each slot and the rest listen, so
// each Step resolves ~n·n/4 (sender, listener) interactions through the SINR
// physics. Headline numbers (pre- and post-kernel) are recorded in
// BENCH_physics.json; see DESIGN.md §Physics kernel.
//
// The companion TestSlotLoopZeroAlloc (internal/sim) asserts the steady-state
// slot loop performs zero allocations per Step.

import (
	"fmt"
	"math/rand"
	"testing"

	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// physProto is a fixed-role protocol used to exercise the channel physics:
// transmitters broadcast every slot, everyone else listens. Step performs no
// allocations, so engine-side allocations are directly observable.
type physProto struct {
	id       int
	transmit bool
	power    float64
}

func (p *physProto) Step(slot int, inbox []sim.Delivery) sim.Action {
	if p.transmit {
		return sim.Transmit(p.power, sim.Message{Kind: sim.KindBroadcast, From: p.id, To: sim.NoAddressee})
	}
	return sim.Listen()
}

func physEngine(b *testing.B, n, workers int) *sim.Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	in := sinr.MustInstance(workload.UniformDensity(rng, n, 0.15), sinr.DefaultParams())
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &physProto{id: i, transmit: i%4 == 0, power: power}
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkSlotPhysics reports ns per engine slot for n ∈ {256, 1024, 4096}.
func BenchmarkSlotPhysics(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eng := physEngine(b, n, 0)
			defer eng.Close()
			// Warm to steady state: inbox buffers reach final capacity and
			// the worker pool (if any) is spun up before measurement.
			eng.Run(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			if eng.Stats().Deliveries < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkSlotPhysicsSerial pins Workers=1 to expose the single-core cost of
// the physics kernel itself, independent of parallel speedup.
func BenchmarkSlotPhysicsSerial(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eng := physEngine(b, n, 1)
			defer eng.Close()
			eng.Run(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}
