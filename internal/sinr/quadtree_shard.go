package sinr

// Sharded bottom-up accumulation: the parallel form of QuadScratch.
// Accumulate for dense slots. The pyramid is cut at level s = min(3, L)
// into the 4^s level-s subtrees ("shards"); in Morton layout each shard's
// nodes occupy one contiguous local-id range per level, so shards write
// disjoint regions of every array and can run on any workers in any order
// with no synchronization. The protocol is
//
//	AccumBegin(txs)            — serial: epoch, counting-sort txs by shard
//	AccumShard(sh, txs) × 4^s  — parallel, any order/worker assignment
//	AccumFinish()              — serial: fold levels s..1, normalize 0..s
//
// and the result is bit-identical to the serial Accumulate
// (TestShardedAccumulateDeterminism), because every float fold happens in
// the same order:
//
//   - Leaf folds. The counting sort is stable, so a shard sees its txs in
//     global tx order — each leaf's sums fold in exactly the serial order.
//   - Within-shard parent folds. Every active list (serial and sharded) is
//     ordered by the earliest tx index under the node — at level L first
//     touch IS first tx, and inductively a parent is first touched by its
//     earliest child. A shard's restricted lists therefore equal the serial
//     lists restricted to the shard's subtree, and all children of any
//     parent share a shard, so each parent's sums fold in the serial order.
//   - The cross-shard merge. AccumFinish seeds the level-s active list with
//     the occupied shards in first-tx order (recorded by the counting
//     sort), which by the invariant above equals the serial level-s list;
//     levels s−1..0 then fold exactly as the serial pass.
//
// Leaf bucketing writes each shard's txs into its own disjoint segment of
// sc.order/sx/sy/sp (segment offsets from the counting sort), so each
// leaf's bucket holds the same txs in the same order as the serial pass —
// the only property the exact scans read. O(len(txs) + occupied nodes)
// total across shards; allocation-free after the first AccumBegin sizes
// the arena.

// accumShardLog is the maximum shard-level depth: s = min(3, L), so at
// most 4³ = 64 shards — enough to feed every worker of a wide pool while
// keeping the serial fold in AccumFinish trivially small.
const accumShardLog = 3

// AccumShards returns the number of shards the scratch's plan supports, or
// 1 when the pyramid is too shallow to be worth cutting (callers should
// then use the serial Accumulate).
func (sc *QuadScratch) AccumShards() int {
	l := sc.q.levels
	if l < 2 {
		return 1
	}
	s := l
	if s > accumShardLog {
		s = accumShardLog
	}
	return 1 << (2 * uint(s))
}

// ensureShards lazily sizes the sharded-accumulate state: the stable
// counting-sort buffer and the per-level, per-shard active-list arena
// (one slot per node of levels s..L, segmented so every shard owns the
// contiguous Morton range of its subtree).
func (sc *QuadScratch) ensureShards() {
	if sc.shardsReady {
		return
	}
	q := sc.q
	l := q.levels
	s := l
	if s > accumShardLog {
		s = accumShardLog
	}
	sc.shardS = s
	sc.shardTx = make([]int32, len(q.in.pts))
	sc.shardABase = make([]int32, l+1)
	base := int32(0)
	for lvl := s; lvl <= l; lvl++ {
		sc.shardABase[lvl] = base
		base += (int32(1) << uint(lvl)) * (int32(1) << uint(lvl))
	}
	sc.shardArena = make([]int32, base)
	sc.shardCnt = make([][]int32, l+1)
	for lvl := s; lvl <= l; lvl++ {
		sc.shardCnt[lvl] = make([]int32, 1<<(2*uint(s)))
	}
	sc.shardsReady = true
}

// AccumBegin opens a sharded accumulation epoch: it advances the scratch
// epoch and counting-sorts the slot's txs by shard (stable, so each shard
// sees its txs in global tx order), recording the occupied shards in
// first-tx order for AccumFinish's deterministic merge. Serial; call it
// before dispatching AccumShard.
//sinr:hotpath
func (sc *QuadScratch) AccumBegin(txs []Tx) {
	sc.ensureShards()
	q := sc.q
	sc.beginEpoch()
	for lvl := range sc.active {
		sc.active[lvl] = sc.active[lvl][:0]
	}
	s := sc.shardS
	l := q.levels
	shift := 2 * uint(l-s)
	nsh := 1 << (2 * uint(s))
	var cnt [maxAccumShards]int32
	sc.shardN = 0
	for i := range txs {
		sh := q.leafOf[txs[i].Sender] >> shift
		if cnt[sh] == 0 {
			sc.shardList[sc.shardN] = sh
			sc.shardN++
		}
		cnt[sh]++
	}
	sc.shardSeg[0] = 0
	for sh := 0; sh < nsh; sh++ {
		sc.shardSeg[sh+1] = sc.shardSeg[sh] + cnt[sh]
		cnt[sh] = 0
	}
	for i := range txs {
		sh := q.leafOf[txs[i].Sender] >> shift
		sc.shardTx[sc.shardSeg[sh]+cnt[sh]] = int32(i)
		cnt[sh]++
	}
	for lvl := s; lvl <= l; lvl++ {
		c := sc.shardCnt[lvl]
		for sh := 0; sh < nsh; sh++ {
			c[sh] = 0
		}
	}
}

// AccumShard folds shard sh's txs into the shard's subtree: leaf
// aggregates and bucketing in (global) tx order, per-level parent folds in
// first-touch order, then centroid normalization for the shard's levels
// below the cut (level s stays raw for AccumFinish). Safe to run
// concurrently with other shards — all writes land in the shard's disjoint
// Morton ranges.
//sinr:hotpath
func (sc *QuadScratch) AccumShard(sh int, txs []Tx) {
	lo, hi := sc.shardSeg[sh], sc.shardSeg[sh+1]
	if lo == hi {
		return
	}
	q := sc.q
	ep := sc.epoch
	l := q.levels
	s := sc.shardS
	leafOff := q.levelOff[l]
	lbase := sc.shardABase[l] + int32(sh)<<(2*uint(l-s))
	nleaf := int32(0)
	for k := lo; k < hi; k++ {
		i := sc.shardTx[k]
		t := q.leafOf[txs[i].Sender]
		g := leafOff + t
		if sc.stamp[g] != ep {
			sc.stamp[g] = ep
			sc.mass[g], sc.cenX[g], sc.cenY[g], sc.pmax[g] = 0, 0, 0, 0
			sc.fill[t] = 0
			sc.shardArena[lbase+nleaf] = t
			nleaf++
		}
		p := txs[i].Power
		pt := q.in.pts[txs[i].Sender]
		sc.mass[g] += p
		sc.cenX[g] += p * pt.X
		sc.cenY[g] += p * pt.Y
		if p > sc.pmax[g] {
			sc.pmax[g] = p
		}
		sc.fill[t]++
	}
	sc.shardCnt[l][sh] = nleaf
	ofs := lo
	for k := int32(0); k < nleaf; k++ {
		t := sc.shardArena[lbase+k]
		sc.start[t] = ofs
		ofs += sc.fill[t]
		sc.fill[t] = 0
	}
	for k := lo; k < hi; k++ {
		i := sc.shardTx[k]
		t := q.leafOf[txs[i].Sender]
		idx := sc.start[t] + sc.fill[t]
		sc.order[idx] = i
		pt := q.in.pts[txs[i].Sender]
		sc.sx[idx] = pt.X
		sc.sy[idx] = pt.Y
		sc.sp[idx] = txs[i].Power
		sc.fill[t]++
	}
	for lvl := l; lvl > s; lvl-- {
		childOff := q.levelOff[lvl]
		parentOff := q.levelOff[lvl-1]
		cbase := sc.shardABase[lvl] + int32(sh)<<(2*uint(lvl-s))
		pbase := sc.shardABase[lvl-1] + int32(sh)<<(2*uint(lvl-1-s))
		np := int32(0)
		for k := int32(0); k < sc.shardCnt[lvl][sh]; k++ {
			t := sc.shardArena[cbase+k]
			pl := t >> 2
			pg := parentOff + pl
			g := childOff + t
			if sc.stamp[pg] != ep {
				sc.stamp[pg] = ep
				sc.mass[pg], sc.cenX[pg], sc.cenY[pg], sc.pmax[pg] = 0, 0, 0, 0
				sc.shardArena[pbase+np] = pl
				np++
			}
			sc.mass[pg] += sc.mass[g]
			sc.cenX[pg] += sc.cenX[g]
			sc.cenY[pg] += sc.cenY[g]
			if sc.pmax[g] > sc.pmax[pg] {
				sc.pmax[pg] = sc.pmax[g]
			}
		}
		sc.shardCnt[lvl-1][sh] = np
	}
	for lvl := s + 1; lvl <= l; lvl++ {
		off := q.levelOff[lvl]
		abase := sc.shardABase[lvl] + int32(sh)<<(2*uint(lvl-s))
		for k := int32(0); k < sc.shardCnt[lvl][sh]; k++ {
			g := off + sc.shardArena[abase+k]
			if m := sc.mass[g]; m > 0 {
				sc.cenX[g] /= m
				sc.cenY[g] /= m
			}
		}
	}
	if sc.prec32 {
		sc.round32Shard(sh)
	}
}

// AccumFinish completes a sharded accumulation: it seeds the level-s
// active list with the occupied shards in first-tx order — which equals
// the serial pass's first-touch order, since every active list is ordered
// by earliest tx under the node — then folds levels s..1 and normalizes
// levels 0..s exactly as the serial pass does. Serial; call it after every
// AccumShard has returned.
//sinr:hotpath
func (sc *QuadScratch) AccumFinish() {
	q := sc.q
	ep := sc.epoch
	s := sc.shardS
	as := sc.active[s]
	for k := 0; k < sc.shardN; k++ {
		//lint:ignore hotpathalloc as aliases preallocated sc.active[s]; occupied shards never exceed its capacity
		as = append(as, sc.shardList[k])
	}
	sc.active[s] = as
	for lvl := s; lvl > 0; lvl-- {
		childOff := q.levelOff[lvl]
		parentOff := q.levelOff[lvl-1]
		plist := sc.active[lvl-1]
		for _, t := range sc.active[lvl] {
			pl := t >> 2
			pg := parentOff + pl
			g := childOff + t
			if sc.stamp[pg] != ep {
				sc.stamp[pg] = ep
				sc.mass[pg], sc.cenX[pg], sc.cenY[pg], sc.pmax[pg] = 0, 0, 0, 0
				//lint:ignore hotpathalloc plist aliases preallocated sc.active[lvl-1]; occupied parents never exceed its capacity
				plist = append(plist, pl)
			}
			sc.mass[pg] += sc.mass[g]
			sc.cenX[pg] += sc.cenX[g]
			sc.cenY[pg] += sc.cenY[g]
			if sc.pmax[g] > sc.pmax[pg] {
				sc.pmax[pg] = sc.pmax[g]
			}
		}
		sc.active[lvl-1] = plist
	}
	for lvl := 0; lvl <= s; lvl++ {
		off := q.levelOff[lvl]
		for _, t := range sc.active[lvl] {
			g := off + t
			if m := sc.mass[g]; m > 0 {
				sc.cenX[g] /= m
				sc.cenY[g] /= m
			}
		}
	}
	if sc.prec32 {
		sc.round32Finish()
	}
}
