package lint_test

import (
	"path/filepath"
	"testing"

	"sinrconn/internal/lint"
	"sinrconn/internal/lint/analysis"
	"sinrconn/internal/lint/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestOraclePurity(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.OraclePurity, "sinrconn/internal/oracle")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.HotPathAlloc, "hotpath")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Determinism, "sinrconn/internal/churn")
}

func TestCtxDiscipline(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.CtxDiscipline,
		"sinrconn/internal/widget",
		"sinrconn/cmd/tool", // main package: exempt, zero findings expected
	)
}

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.ErrDiscipline, "errdemo")
}

// TestFaultsFixture runs determinism and ctxdiscipline together over the
// faults fixture: the injection framework lives in the replay-deterministic
// set AND is an ordinary library under the context rules, and the fixture
// pins findings from both on one file.
func TestFaultsFixture(t *testing.T) {
	analysistest.RunAll(t, testdata(t),
		[]*analysis.Analyzer{lint.Determinism, lint.CtxDiscipline},
		"sinrconn/internal/faults",
	)
}

