package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sinrconn/internal/power"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// Variant selects the power regime of TreeViaCapacity (Theorem 4's two
// halves).
type Variant uint8

// TreeViaCapacity variants.
const (
	// VariantMean selects T′ by Υ-sampling and schedules with mean power
	// (Theorem 16: O(Υ·log n) slots).
	VariantMean Variant = iota + 1
	// VariantArbitrary selects T′ with Distr-Cap and computes per-link
	// powers (Theorem 21: O(log n) slots).
	VariantArbitrary
)

// TVCConfig tunes Algorithm 1.
type TVCConfig struct {
	// Variant picks mean or arbitrary power. Default VariantArbitrary.
	Variant Variant
	// Init configures the inner Section 6 constructions. Participants is
	// overwritten each iteration.
	Init InitConfig
	// Rho is the degree cap for T(M). Default DefaultRho.
	Rho int
	// Gamma1 is the mean-variant sampling constant γ₁ (q = 1/(4γ₁Υ)).
	// Default 0.25.
	Gamma1 float64
	// DistrCap configures the arbitrary-power selection.
	DistrCap DistrCapConfig
	// MaxIterations caps Algorithm 1's loop. Default 30·⌈log₂ n⌉ + 30.
	MaxIterations int
	// Seed drives iteration-level randomness (per-iteration seeds derive
	// from it).
	Seed int64
}

func (c *TVCConfig) defaults(n int) {
	if c.Variant == 0 {
		c.Variant = VariantArbitrary
	}
	if c.Rho <= 0 {
		c.Rho = DefaultRho
	}
	if c.Gamma1 <= 0 {
		c.Gamma1 = 0.25
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 30*int(math.Ceil(math.Log2(math.Max(2, float64(n))))) + 30
	}
}

// TVCResult is the outcome of Algorithm 1.
type TVCResult struct {
	// Tree is the final bi-tree. Link slot stamps are iteration indices:
	// the final schedule length is the number of iterations that selected
	// at least one link, matching Theorem 12's "each iteration uses a
	// single slot".
	Tree *tree.BiTree
	// Iterations is the number of Algorithm 1 iterations executed.
	Iterations int
	// ConstructionSlots is the total channel time spent: inner Init runs
	// plus selection slot-pairs.
	ConstructionSlots int
	// SelectionFractions records |T′|/|T| per iteration (Theorem 12's δ).
	SelectionFractions []float64
	// ForcedSelections counts iterations where the probabilistic selection
	// came up empty and the shortest candidate was force-admitted to
	// guarantee progress (a deterministic safety net; rare).
	ForcedSelections int
	// PowerSolveIterations sums Foschini–Miljanic rounds (the paper's η
	// budget for Section 8.2.3), arbitrary variant only.
	PowerSolveIterations int
	// Energy is the total transmission energy the construction spent on
	// the channel: every inner Init run plus the selection protocol's
	// transmissions (Distr-Cap phases or mean-power sampling pairs).
	Energy float64
}

// ErrTVCStuck reports that Algorithm 1 hit MaxIterations.
var ErrTVCStuck = errors.New("core: TreeViaCapacity exceeded iteration budget")

// TreeViaCapacity runs Algorithm 1: repeatedly build an Init tree on the
// still-active nodes, select a large feasible subset T′ of its low-degree
// core, commit those links at the current iteration's schedule slot, and
// recurse on the top-level nodes. See Theorems 12, 16, 20, 21.
// ctx is checked at every iteration (and inside every inner Init run); a
// canceled context aborts the construction with an error wrapping ctx.Err().
func TreeViaCapacity(ctx context.Context, in *sinr.Instance, cfg TVCConfig) (*TVCResult, error) {
	cfg.defaults(in.Len())
	if in.Len() == 0 {
		return nil, errors.New("core: empty instance")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	active := make([]int, in.Len())
	for i := range active {
		active[i] = i
	}
	meanPA := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))

	res := &TVCResult{Tree: &tree.BiTree{Nodes: append([]int(nil), active...)}}
	for len(active) > 1 {
		if res.Iterations >= cfg.MaxIterations {
			return res, fmt.Errorf("%w: %d nodes still active", ErrTVCStuck, len(active))
		}
		res.Iterations++
		iterSeed := rng.Int63()
		if err := checkCtx(ctx, "tree-via-capacity"); err != nil {
			return res, err
		}

		// Step 3: inner tree on the active set.
		icfg := cfg.Init
		icfg.Participants = active
		icfg.Seed = iterSeed
		icfg.Workers = cfg.Init.Workers
		ires, err := Init(ctx, in, icfg)
		if err != nil {
			return res, fmt.Errorf("core: iteration %d init: %w", res.Iterations, err)
		}
		res.ConstructionSlots += ires.SlotsUsed
		res.Energy += ires.Stats.Energy
		innerTree := ires.Tree

		// Step 4a: low-degree core T(M) (Theorem 13).
		core := LowDegreeSubset(innerTree, cfg.Rho)
		cand := make([]sinr.Link, len(core))
		for i, tl := range core {
			cand[i] = tl.L
		}
		if len(cand) == 0 {
			// Degenerate: fall back to the full tree's links.
			for _, tl := range innerTree.Up {
				cand = append(cand, tl.L)
			}
		}

		// Step 4b: select T′.
		var selected []sinr.Link
		var powers map[sinr.Link]float64
		switch cfg.Variant {
		case VariantMean:
			q := SampleProb(in.Upsilon(), cfg.Gamma1)
			var selEnergy float64
			selected, selEnergy = MeanSampleEnergy(in, cand, meanPA, q, rand.New(rand.NewSource(iterSeed^0x9E37)))
			res.ConstructionSlots += 2
			res.Energy += selEnergy
			powers = make(map[sinr.Link]float64, len(selected))
			for _, l := range selected {
				powers[l] = meanPA.Power(in, l)
			}
		case VariantArbitrary:
			dcfg := cfg.DistrCap
			dcfg.Seed = iterSeed ^ 0x51AB
			dres := DistrCap(in, cand, dcfg)
			res.ConstructionSlots += 2 * dres.SlotPairs
			res.Energy += dres.Energy
			var it int
			selected, powers, it, err = solvePowers(in, dres.Selected)
			if err != nil {
				return res, fmt.Errorf("core: iteration %d power solve: %w", res.Iterations, err)
			}
			res.PowerSolveIterations += it
		default:
			return res, fmt.Errorf("core: unknown variant %d", cfg.Variant)
		}

		// Safety net: force progress when the coins all came up empty.
		if len(selected) == 0 {
			l := shortestLink(in, cand)
			selected = []sinr.Link{l}
			powers = map[sinr.Link]float64{l: in.Params().SafePower(in.Length(l))}
			res.ForcedSelections++
		}
		if denom := len(innerTree.Up); denom > 0 {
			res.SelectionFractions = append(res.SelectionFractions,
				float64(len(selected))/float64(denom))
		}

		// Step 5: commit T′ at this iteration's slot; recurse on top-level
		// nodes (those without an outgoing selected link).
		gone := make(map[int]bool, len(selected))
		for _, l := range selected {
			res.Tree.Up = append(res.Tree.Up, tree.TimedLink{
				L:     l,
				Slot:  res.Iterations,
				Power: powers[l],
			})
			gone[l.From] = true
		}
		next := active[:0]
		for _, v := range active {
			if !gone[v] {
				next = append(next, v)
			}
		}
		active = next
	}
	res.Tree.Root = active[0]
	res.Tree.Compact()
	return res, nil
}

// solvePowers computes a feasible power vector for the Distr-Cap selection.
// The Eqn-3 invariant guarantees solvability; as a defensive measure, if
// the solver still diverges the longest links are dropped until it
// converges (never observed on generated instances, but a hard guarantee
// beats an assumption).
func solvePowers(in *sinr.Instance, selected []sinr.Link) ([]sinr.Link, map[sinr.Link]float64, int, error) {
	links := append([]sinr.Link(nil), selected...)
	sort.SliceStable(links, func(a, b int) bool {
		return in.Length(links[a]) < in.Length(links[b])
	})
	totalIt := 0
	for len(links) > 0 {
		// Slack 1.01: the dynamics approach the fixed point from below, so
		// solving for exactly β can leave the final vector a hair short.
		vec, it, err := power.Solve(in, links, power.Options{Slack: 1.01})
		totalIt += it
		if err == nil {
			m := make(map[sinr.Link]float64, len(links))
			for i, l := range links {
				m[l] = vec[i]
			}
			return links, m, totalIt, nil
		}
		if !errors.Is(err, power.ErrInfeasible) {
			return nil, nil, totalIt, err
		}
		links = links[:len(links)-1] // drop the longest and retry
	}
	return nil, map[sinr.Link]float64{}, totalIt, nil
}

func shortestLink(in *sinr.Instance, links []sinr.Link) sinr.Link {
	best := links[0]
	bestLen := in.Length(best)
	for _, l := range links[1:] {
		if ln := in.Length(l); ln < bestLen {
			bestLen = ln
			best = l
		}
	}
	return best
}
