package sinr_test

// Native fuzz targets for the physics kernel. Both fuzz over a compact
// (seed, size, selector) encoding and regenerate geometry deterministically
// from it, so every crash reproduces from its corpus entry alone. Seed
// corpora live in testdata/fuzz/ and make CI smoke runs deterministic.
//
// Decision comparisons near the β cut carry a guard band: kernel and oracle
// agree to 1e-12 relative, so a disagreement is only meaningful when the
// SINR margin to the threshold exceeds the guard — adversarial inputs that
// land a link exactly on the cut are skipped, not failed.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
)

// fuzzInstance regenerates a jittered-grid instance from a fuzz seed: O(n),
// no rejection loops, minimum spacing ~2 by construction.
func fuzzInstance(seed int64, n int, alpha float64) ([]geom.Point, *sinr.Instance) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(i%8)*3 + rng.Float64(),
			Y: float64(i/8)*3 + rng.Float64(),
		}
	}
	p := sinr.DefaultParams()
	p.Alpha = alpha
	return pts, sinr.MustInstance(pts, p)
}

func clampFuzz(v, lo, hi int64) int {
	span := hi - lo + 1
	return int(lo + ((v%span)+span)%span)
}

// fuzzQuadPoints generates FuzzQuadtree's geometry family. The shape
// selector rides the seed's bits above the low byte, so the low-seed
// corpus entries (and the original f.Add seeds) keep regenerating the
// jittered grid bit for bit; higher seeds buy the quadtree's two
// degenerate regimes. All shapes keep pairwise distance ≥ 1 (the
// instance contract) with O(n) construction and no rejection loops.
func fuzzQuadPoints(seed int64, n int) []geom.Point {
	shape := (uint64(seed) >> 8) % 4
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	switch shape {
	case 2:
		// Collinear: zero-height bounding box. The pyramid's cells
		// collapse along one axis — the aspect-ratio corner of the plan
		// derivation (bbox squaring, midline classes on a flat strip).
		for i := range pts {
			pts[i] = geom.Point{X: float64(i)*1.5 + 0.4*rng.Float64(), Y: 5}
		}
	case 3:
		// Corner clusters plus sparse mid-field outposts: extreme density
		// contrast. Deep occupied subtrees at the corners with a nearly
		// empty interior stresses frontier opening and centroid brackets.
		const span = 600.0
		for i := range pts {
			if i%16 == 15 {
				pts[i] = geom.Point{X: span/2 + float64(i)*1.5, Y: span / 2}
				continue
			}
			c := i % 4
			cx, cy := float64(c%2)*span, float64(c/2)*span
			k := i / 4
			pts[i] = geom.Point{
				X: cx + float64(k%8)*1.5 + 0.4*rng.Float64(),
				Y: cy + float64(k/8)*1.5 + 0.4*rng.Float64(),
			}
		}
	default: // shapes 0, 1: the original jittered grid (fuzzInstance's loop)
		for i := range pts {
			pts[i] = geom.Point{
				X: float64(i%8)*3 + rng.Float64(),
				Y: float64(i/8)*3 + rng.Float64(),
			}
		}
	}
	return pts
}

// FuzzKernelVsOracle fuzzes the kernel-vs-oracle differential: every
// kernel-backed quantity must match the naive reference to 1e-12 relative
// on arbitrary (seed, n, α) instances. Type 1: any disagreement is a bug.
func FuzzKernelVsOracle(f *testing.F) {
	f.Add(int64(42), int64(24), int64(2))
	f.Add(int64(123), int64(9), int64(0))
	f.Add(int64(456), int64(40), int64(1))
	f.Add(int64(7), int64(3), int64(3))
	f.Fuzz(func(t *testing.T, seed, nRaw, alphaSel int64) {
		n := clampFuzz(nRaw, 3, 48)
		alpha := diffAlphas[clampFuzz(alphaSel, 0, int64(len(diffAlphas)-1))]
		pts, in := fuzzInstance(seed, n, alpha)
		p := in.Params()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))

		txs := make([]sinr.Tx, 1+n/4)
		for i := range txs {
			txs[i] = sinr.Tx{
				Sender: rng.Intn(n),
				Power:  p.SafePower(1+rng.Float64()*6) * (0.5 + rng.Float64()),
			}
		}
		for trial := 0; trial < 8; trial++ {
			l := sinr.Link{From: rng.Intn(n), To: rng.Intn(n)}
			if l.From == l.To {
				continue
			}
			// c-based quantities are only comparable at well-conditioned
			// powers (≥ SafePower keeps c's denominator ≥ 1/2); below that
			// the 1−βNℓ^α/P cancellation amplifies the kernel's last-ulp
			// rounding beyond any fixed tolerance. The numerical contract in
			// DESIGN.md §2 is scoped to this regime; feasibility decisions
			// at arbitrary powers are FuzzFeasibility's job.
			pu := p.SafePower(in.Length(l)) * (1 + rng.Float64())
			if got, want := in.C(in.Length(l), pu), oracle.C(p, oracle.Dist(pts, l.From, l.To), pu); !diffClose(got, want) {
				t.Fatalf("C(%v): kernel %v oracle %v", l, got, want)
			}
			if got, want := in.SINR(txs, l), oracle.SINR(pts, p, txs, l); !diffClose(got, want) {
				t.Fatalf("SINR(%v): kernel %v oracle %v", l, got, want)
			}
			if got, want := in.SetAffectance(txs, l, pu), oracle.SetAffectance(pts, p, txs, l, pu); !diffClose(got, want) {
				t.Fatalf("SetAffectance(%v): kernel %v oracle %v", l, got, want)
			}
			if got, want := in.MeasuredAffectance(txs, l, pu), oracle.MeasuredAffectance(pts, p, txs, l, pu); !diffClose(got, want) {
				t.Fatalf("MeasuredAffectance(%v): kernel %v oracle %v", l, got, want)
			}
			w := rng.Intn(n)
			if got, want := in.Gain(w, l.To), oracle.Gain(pts, alpha, w, l.To); !diffClose(got, want) {
				t.Fatalf("Gain(%d,%d): kernel %v oracle %v", w, l.To, got, want)
			}
		}
	})
}

// feasibilityMargin returns the smallest |SINR − (β−slack)| over the links:
// the distance of the decision from its cut, per the oracle.
func feasibilityMargin(pts []geom.Point, p sinr.Params, links []sinr.Link, powers []float64) float64 {
	txs := make([]sinr.Tx, len(links))
	for i, l := range links {
		txs[i] = sinr.Tx{Sender: l.From, Power: powers[i]}
	}
	margin := math.Inf(1)
	for _, l := range links {
		m := math.Abs(oracle.SINR(pts, p, txs, l) - (p.Beta - oracle.FeasibilitySlack))
		if m < margin {
			margin = m
		}
	}
	return margin
}

// FuzzFeasibility fuzzes the feasibility decision differential plus the
// power-scale metamorphic invariant on arbitrary link sets. Decisions are
// only compared when the SINR margin to the β cut exceeds the guard band.
func FuzzFeasibility(f *testing.F) {
	f.Add(int64(42), int64(24), int64(4))
	f.Add(int64(123), int64(12), int64(1))
	f.Add(int64(456), int64(32), int64(6))
	f.Fuzz(func(t *testing.T, seed, nRaw, mRaw int64) {
		n := clampFuzz(nRaw, 4, 40)
		m := clampFuzz(mRaw, 1, 8)
		if m >= n {
			m = n - 1
		}
		pts, in := fuzzInstance(seed, n, 3)
		p := in.Params()
		rng := rand.New(rand.NewSource(seed ^ 0xfea51b1e))
		links, powers := randomLinkSet(rng, in, m)

		guard := 1e-6 * p.Beta
		kOK, kErr := in.SINRFeasible(links, powers)
		oOK, oErr := oracle.SINRFeasible(pts, p, links, powers)
		if (kErr == nil) != (oErr == nil) {
			t.Fatalf("error mismatch: kernel %v oracle %v", kErr, oErr)
		}
		margin := feasibilityMargin(pts, p, links, powers)
		if margin > guard && kOK != oOK {
			t.Fatalf("feasibility mismatch (margin %v): kernel %v oracle %v on %v", margin, kOK, oOK, links)
		}

		// Metamorphic: γ-scaling all powers preserves feasibility.
		scaled := make([]float64, len(powers))
		for i, pw := range powers {
			scaled[i] = pw * 4
		}
		sOK, _ := in.SINRFeasible(links, scaled)
		if kOK && margin > guard && !sOK {
			if sm := feasibilityMargin(pts, p, links, scaled); sm > guard {
				t.Fatalf("feasible set (margin %v) broke under γ=4 power scaling (margin %v)", margin, sm)
			}
		}
	})
}

// FuzzQuadtree fuzzes the hierarchical far-field engine on arbitrary
// (seed, n, α, ε) instances: the kernel's walked SINR must match the
// oracle's recursive naive reference to 1e-12 relative (identical
// open/accept decisions), stay inside the certified interference bracket of
// the exact physics, and the guard-banded feasibility check must never
// reject an exactly-feasible schedule.
func FuzzQuadtree(f *testing.F) {
	f.Add(int64(42), int64(32), int64(2), int64(1))
	f.Add(int64(123), int64(12), int64(0), int64(0))
	f.Add(int64(456), int64(48), int64(3), int64(2))
	f.Add(int64(7), int64(64), int64(1), int64(0))
	// Shape seeds: 512>>8 = 2 (collinear, degenerate bbox), 768>>8 = 3
	// (corner clusters + outposts) — see fuzzQuadPoints.
	f.Add(int64(512), int64(40), int64(2), int64(1))
	f.Add(int64(768), int64(56), int64(1), int64(2))
	f.Fuzz(func(t *testing.T, seed, nRaw, alphaSel, epsSel int64) {
		n := clampFuzz(nRaw, 4, 64)
		alpha := diffAlphas[clampFuzz(alphaSel, 0, int64(len(diffAlphas)-1))]
		eps := quadEpsSweep[clampFuzz(epsSel, 0, int64(len(quadEpsSweep)-1))]
		pts := fuzzQuadPoints(seed, n)
		p0 := sinr.DefaultParams()
		p0.Alpha = alpha
		in := sinr.MustInstance(pts, p0)
		p := in.Params()
		q, err := in.QuadTree(eps)
		if err != nil {
			t.Fatal(err)
		}
		ce := q.CertifiedMaxRelError()
		ce32 := q.Prec32().CertifiedMaxRelError()
		sc := q.NewResolver()
		sc32 := q.Prec32().NewResolver()
		rng := rand.New(rand.NewSource(seed ^ 0x9afd7ee1))

		txs := farTxSet(rng, in, 1+n/3)
		sc.Accumulate(txs)
		sc32.Accumulate(txs)
		for trial := 0; trial < 6; trial++ {
			tx := txs[rng.Intn(len(txs))]
			l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
			if l.From == l.To {
				continue
			}
			got := sc.LinkSINR(txs, l, tx.Power)
			want := oracle.QuadLinkSINR(pts, p, eps, txs, l, tx.Power)
			if !diffClose(got, want) {
				t.Fatalf("LinkSINR(%v) eps %v: kernel %v oracle %v", l, eps, got, want)
			}
			got32 := sc32.LinkSINR(txs, l, tx.Power)
			want32 := oracle.QuadLinkSINR32(pts, p, eps, txs, l, tx.Power)
			if !diffClose(got32, want32) {
				t.Fatalf("LinkSINR32(%v) eps %v: kernel %v oracle %v", l, eps, got32, want32)
			}
			signal := tx.Power / oracle.PathLoss(oracle.Dist(pts, l.From, l.To), p.Alpha)
			interf := 0.0
			for _, w := range txs {
				if w.Sender != l.From {
					interf += w.Power / oracle.PathLoss(oracle.Dist(pts, w.Sender, l.To), p.Alpha)
				}
			}
			bracket := func(label string, v, cert float64) {
				t.Helper()
				loI := (1 - cert) * interf
				if loI < 0 {
					loI = 0
				}
				lo := signal / (p.Noise + (1+cert)*interf) * (1 - 1e-9)
				hi := signal / (p.Noise + loI) * (1 + 1e-9)
				if v < lo || v > hi {
					t.Fatalf("%s(%v) eps %v: %v outside certified [%v, %v]", label, l, eps, v, lo, hi)
				}
			}
			bracket("LinkSINR", got, ce)
			bracket("LinkSINR32", got32, ce32)
		}

		m := clampFuzz(nRaw^seed, 1, 6)
		if m >= n {
			m = n - 1
		}
		links, powers := randomLinkSet(rng, in, m)
		farOK, err := in.SINRFeasibleFarBuf(links, powers, q, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		exactOK, err := in.SINRFeasible(links, powers)
		if err != nil {
			t.Fatal(err)
		}
		if exactOK && !farOK {
			t.Fatalf("eps %v: quadtree check rejected exactly-feasible %v", eps, links)
		}
	})
}

// FuzzFarField fuzzes the far-field approximation on arbitrary (seed, n, α,
// ε) instances: the kernel's tiled SINR must match the oracle's brute-force
// tiled reference to 1e-12 relative, stay inside the certified interference
// bracket of the exact physics, and the guard-banded feasibility check must
// never reject an exactly-feasible schedule.
func FuzzFarField(f *testing.F) {
	f.Add(int64(42), int64(32), int64(2), int64(1))
	f.Add(int64(123), int64(12), int64(0), int64(0))
	f.Add(int64(456), int64(48), int64(3), int64(2))
	f.Fuzz(func(t *testing.T, seed, nRaw, alphaSel, epsSel int64) {
		n := clampFuzz(nRaw, 4, 64)
		alpha := diffAlphas[clampFuzz(alphaSel, 0, int64(len(diffAlphas)-1))]
		eps := farEpsSweep[clampFuzz(epsSel, 0, int64(len(farEpsSweep)-1))]
		pts, in := fuzzInstance(seed, n, alpha)
		p := in.Params()
		ff, err := in.FarField(eps)
		if err != nil {
			t.Fatal(err)
		}
		ce := ff.CertifiedMaxRelError()
		sc := ff.NewScratch()
		rng := rand.New(rand.NewSource(seed ^ 0xfa2f1e1d))

		txs := farTxSet(rng, in, 1+n/3)
		ff.Accumulate(txs, sc)
		for trial := 0; trial < 6; trial++ {
			tx := txs[rng.Intn(len(txs))]
			l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
			if l.From == l.To {
				continue
			}
			got := ff.LinkSINR(txs, l, tx.Power, sc)
			want := oracle.FarLinkSINR(pts, p, eps, txs, l, tx.Power)
			if !diffClose(got, want) {
				t.Fatalf("LinkSINR(%v) eps %v: kernel %v oracle %v", l, eps, got, want)
			}
			// Certified bracket against the exact physics, bounded through
			// the interference sum (valid for certified ε ≥ 1 too).
			signal := tx.Power / oracle.PathLoss(oracle.Dist(pts, l.From, l.To), p.Alpha)
			interf := 0.0
			for _, w := range txs {
				if w.Sender != l.From {
					interf += w.Power / oracle.PathLoss(oracle.Dist(pts, w.Sender, l.To), p.Alpha)
				}
			}
			loI := (1 - ce) * interf
			if loI < 0 {
				loI = 0
			}
			lo := signal / (p.Noise + (1+ce)*interf) * (1 - 1e-9)
			hi := signal / (p.Noise + loI) * (1 + 1e-9)
			if got < lo || got > hi {
				t.Fatalf("LinkSINR(%v) eps %v: %v outside certified [%v, %v]", l, eps, got, lo, hi)
			}
		}

		m := clampFuzz(nRaw^seed, 1, 6)
		if m >= n {
			m = n - 1
		}
		links, powers := randomLinkSet(rng, in, m)
		farOK, err := in.SINRFeasibleFarBuf(links, powers, ff, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		exactOK, err := in.SINRFeasible(links, powers)
		if err != nil {
			t.Fatal(err)
		}
		if exactOK && !farOK {
			t.Fatalf("eps %v: far check rejected exactly-feasible %v", eps, links)
		}
	})
}
