package sinrconn

// BenchmarkQuadtree measures one simulator slot under the hierarchical
// (quadtree) far-field engine against the exact kernel and the flat tile
// grid, up to n = 262144 — 4× past the largest flat-grid benchmark and ~45×
// past the gain-table memory bound. Half the nodes transmit each slot (the
// densest decode load), so a slot at n = 262144 resolves ~1.7·10¹⁰ exact
// pair interactions; the quadtree walks ~10³–10⁴ pyramid nodes per listener
// instead, opening only what each listener's ε budget requires. The sweep
// deliberately includes ε = 0.1 — the tight-ε regime where the flat grid's
// single global near ring degenerates (NearDominated) and only the
// hierarchical engine stays sub-quadratic.
//
// Headline numbers live in BENCH_quadtree.json; TestQuadtreeBigSlot pins
// the n = 262144 acceptance (slot completes, zero allocations, plan +
// scratch inside the 256 MiB instance bound); the flat-vs-quadtree
// crossover and the adaptive calibration come from BenchmarkAdaptiveCrossover.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
)

var quadBenchEps = []float64{0.1, 0.5, 1.0, 2.5}

// quadBenchEngine builds a fixed-role engine (even ids transmit) over the
// shared far-bench geometry with the given plan (nil = exact).
func quadBenchEngine(b *testing.B, in *sinr.Instance, ff sinr.Far) *sim.Engine {
	b.Helper()
	n := in.Len()
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &physProto{id: i, transmit: i%2 == 0, power: power}
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{FarField: ff})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func benchSlot(b *testing.B, in *sinr.Instance, ff sinr.Far) {
	eng := quadBenchEngine(b, in, ff)
	defer eng.Close()
	// Two warm-up slots, not one: delivery inboxes are double-buffered, so
	// both buffers must see a slot before the steady state is allocation
	// free.
	eng.Run(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	if eng.Stats().Deliveries < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkQuadtree sweeps n × ε with exact and flat-grid baselines (exact
// is omitted at n = 262144, where a single measured slot would run minutes;
// the n = 65536 ratio already pins the trend). At n = 1048576 the sweep
// keeps ε ≥ 0.5 — a tight-ε (0.1) million-node slot opens most of the
// pyramid per listener and runs minutes on one CPU; n = 262144 pins that
// regime. -short keeps the smoke run to n ≤ 16384.
func BenchmarkQuadtree(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144, 1048576} {
		if testing.Short() && n > 16384 {
			continue
		}
		in := farBenchInstance(n)
		if n <= 65536 {
			b.Run(fmt.Sprintf("n=%d/exact", n), func(b *testing.B) {
				benchSlot(b, in, nil)
			})
			b.Run(fmt.Sprintf("n=%d/flat-eps=0.5", n), func(b *testing.B) {
				f, err := in.FarField(0.5)
				if err != nil {
					b.Fatal(err)
				}
				benchSlot(b, in, f)
			})
		}
		for _, eps := range quadBenchEps {
			if n == 1048576 && eps < 0.5 {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/eps=%v", n, eps), func(b *testing.B) {
				q, err := in.QuadTree(eps)
				if err != nil {
					b.Fatal(err)
				}
				benchSlot(b, in, q)
			})
			if n == 1048576 {
				b.Run(fmt.Sprintf("n=%d/eps=%v/f32", n, eps), func(b *testing.B) {
					q, err := in.QuadTree(eps)
					if err != nil {
						b.Fatal(err)
					}
					benchSlot(b, in, q.Prec32())
				})
			}
		}
	}
}

// senderCountProto transmits on every stride-th id, so a slot carries
// n/stride transmitters spread uniformly over the instance (ids are
// row-major on the bench grid; a contiguous id prefix would band the
// senders into a corner, which is not the workload the crossover models).
type senderCountProto struct {
	id, stride int
	power      float64
}

func (p *senderCountProto) Step(slot int, inbox []sim.Delivery) sim.Action {
	if p.id%p.stride == 0 {
		return sim.Transmit(p.power, sim.Message{Kind: sim.KindBroadcast, From: p.id, To: sim.NoAddressee})
	}
	return sim.Listen()
}

// BenchmarkAdaptiveCrossover calibrates sim.DefaultAdaptiveCrossover: per
// slot, exact resolution costs |listeners|·S direct gains while the
// quadtree pays its accumulation plus a per-listener walk that must still
// reach each occupied region, so the curves cross in S (the sender count)
// only weakly dependently on n. The recorded crossing on this geometry —
// between S = 512 and S = 1024 at both ε = 0.5 and ε = 2.5 — is where the
// 768 default comes from (BENCH_quadtree.json).
func BenchmarkAdaptiveCrossover(b *testing.B) {
	n := 65536
	if testing.Short() {
		n = 16384
	}
	in := farBenchInstance(n)
	power := in.Params().SafePower(4)
	for _, senders := range []int{64, 256, 512, 1024, 2048, 4096, 8192} {
		procs := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			procs[i] = &senderCountProto{id: i, stride: n / senders, power: power}
		}
		run := func(b *testing.B, ff sinr.Far) {
			eng, err := sim.NewEngine(in, procs, sim.Config{FarField: ff})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			eng.Run(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		}
		b.Run(fmt.Sprintf("s=%d/exact", senders), func(b *testing.B) { run(b, nil) })
		for _, eps := range []float64{0.5, 2.5} {
			b.Run(fmt.Sprintf("s=%d/eps=%v", senders, eps), func(b *testing.B) {
				q, err := in.QuadTree(eps)
				if err != nil {
					b.Fatal(err)
				}
				run(b, q)
			})
		}
	}
}

// TestQuadtreeMeasuredError measures the actual approximation error of the
// quadtree benchmark scenario, oracle-verified: at sampled listeners the
// hierarchical channel resolution (winner SINR, Resolve path — exactly
// what BenchmarkQuadtree times) is compared against the naive exact
// physics. The measured maximum must stay within the certified bound; the
// observed values (orders of magnitude below it — the power-weighted
// centroid cancels the first-order term) are recorded in
// BENCH_quadtree.json.
func TestQuadtreeMeasuredError(t *testing.T) {
	n := 16384
	if testing.Short() {
		n = 4096
	}
	in := farBenchInstance(n)
	pts := in.Points()
	p := in.Params()
	power := p.SafePower(4)
	txs := make([]sinr.Tx, 0, n/2)
	for i := 0; i < n; i += 2 {
		txs = append(txs, sinr.Tx{Sender: i, Power: power})
	}
	rng := rand.New(rand.NewSource(9))
	for _, eps := range []float64{0.1, 0.5, 1.0, 2.5} {
		q, err := in.QuadTree(eps)
		if err != nil {
			t.Fatal(err)
		}
		sc := q.NewResolver()
		sc.Accumulate(txs)
		maxErr := 0.0
		for probe := 0; probe < 60; probe++ {
			v := rng.Intn(n)/2*2 + 1 // listeners are the odd indices
			if v >= n {
				continue
			}
			best, bestRP, total, sat := sc.Resolve(v, txs)
			if sat || best < 0 {
				continue
			}
			exactTotal, exactBestRP := 0.0, 0.0
			for _, tx := range txs {
				rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
				exactTotal += rp
				if rp > exactBestRP {
					exactBestRP = rp
				}
			}
			far := bestRP / (p.Noise + (total - bestRP))
			exact := exactBestRP / (p.Noise + (exactTotal - exactBestRP))
			if e := math.Abs(exact-far) / far; e > maxErr {
				maxErr = e
			}
		}
		if ce := q.CertifiedMaxRelError(); maxErr > ce {
			t.Fatalf("eps %v: measured max SINR error %v exceeds certified bound %v", eps, maxErr, ce)
		}
		t.Logf("n=%d eps=%v (L=%d, θ=%.4f): measured max relative SINR error %.2e",
			n, eps, q.Levels(), q.Theta(), maxErr)
	}
}

// quadFootprint is the deterministic memory accounting for one plan plus
// one engine scratch: node→leaf assignment and the listener batch spec on
// the plan side; pyramid accumulators, leaf bucketing (streamed
// coordinates included), marks, and the shard machinery on the scratch
// side. Slices carry exact element sizes; struct/backing-array overhead
// is noise at this scale.
func quadFootprint(q *sinr.QuadTree, n int) int {
	planBytes := 4*n + // leafOf
		8*n // batchOrder + batchClass (predicate-class listener order)
	scratchBytes := q.Nodes()*(4+4*8) + // stamp + mass/cenX/cenY/pmax
		q.Leaves()*8 + // start/fill
		8*n + // order + senderMark
		24*n + // sx/sy/sp streamed leaf coordinates
		q.Nodes()*4 + // active-list capacity upper bound
		4*n + q.Leaves()*6 // shardTx + shard arena (Σ 4^ℓ, ℓ = s..L, ≤ 4/3·leaves ids)
	return planBytes + scratchBytes
}

// TestQuadtreeBigSlot is the n = 262144 acceptance gate: a dense far-field
// slot completes with the plan and per-engine scratch inside the 256 MiB
// instance bound (the exact path's gain table would need 512 GiB) and the
// slot loop allocation-free. Skipped under -short — the slot is real work.
func TestQuadtreeBigSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("n=262144 slot is seconds of single-CPU work")
	}
	const n = 262144
	in := farBenchInstance(n)
	q, err := in.QuadTree(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if total := quadFootprint(q, n); total > 256<<20 {
		t.Fatalf("plan+scratch footprint %d MiB exceeds the 256 MiB instance bound", total>>20)
	}
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &physProto{id: i, transmit: i%2 == 0, power: power}
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{FarField: q})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Run(1) // warm the inbox/txs buffers
	if allocs := testing.AllocsPerRun(1, func() { eng.Step() }); allocs != 0 {
		t.Fatalf("n=262144 far slot allocates %.1f times/op, want 0", allocs)
	}
	if eng.Stats().Deliveries == 0 {
		t.Fatal("dense slot delivered nothing — engine not exercising the channel")
	}
}

// TestQuadtreeMillionSlot is the n = 2²⁰ acceptance gate of the
// million-node slot engine (DESIGN.md §12): a dense far slot — 524288
// senders accumulated through the 64-shard parallel path, 524288
// listeners decoded through run-sliced batched frontiers — completes
// with zero allocations inside a wall ceiling, and the plan + scratch
// footprint stays inside the 512 MiB bound the exact path could never
// meet (its gain table would need 8 TiB). The ceiling is a regression
// guard calibrated to the measured single-CPU slot (BENCH_quadtree.json
// records ~4 s on this class of box at ε = 2.5; the ceiling leaves >20×
// for slower CI hardware), not a performance target. -short drops to
// n = 262144, which still exercises every PR-9 path.
func TestQuadtreeMillionSlot(t *testing.T) {
	n := 1 << 20
	wallCeil := 120 * time.Second
	if testing.Short() {
		n = 262144
		wallCeil = 60 * time.Second
	}
	in := farBenchInstance(n)
	q, err := in.QuadTree(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if total := quadFootprint(q, n); total > 512<<20 {
		t.Fatalf("plan+scratch footprint %d MiB exceeds the 512 MiB bound", total>>20)
	}
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &physProto{id: i, transmit: i%2 == 0, power: power}
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{FarField: q})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Run(2) // both inbox buffers warm → steady state is allocation-free
	start := time.Now()
	if allocs := testing.AllocsPerRun(1, func() { eng.Step() }); allocs != 0 {
		t.Fatalf("n=%d far slot allocates %.1f times/op, want 0", n, allocs)
	}
	// AllocsPerRun ran the slot twice (one warm-up inside the helper).
	wall := time.Since(start) / 2
	t.Logf("n=%d dense far slot: %v (ceiling %v)", n, wall, wallCeil)
	if wall > wallCeil {
		t.Fatalf("n=%d slot took %v, ceiling %v — the slot engine regressed", n, wall, wallCeil)
	}
	if eng.Stats().Deliveries == 0 {
		t.Fatal("dense slot delivered nothing — engine not exercising the channel")
	}
}
