package lint

import (
	"go/ast"
	"sort"
	"strings"

	"sinrconn/internal/lint/analysis"
)

// oraclePkg is the one package OraclePurity applies to.
const oraclePkg = "sinrconn/internal/oracle"

// oracleAllowedImports is the closed set of packages the oracle may import:
// the standard library's pure value helpers plus the three leaf data
// packages. Everything else — and internal/sinr above all — is the fast
// path the oracle exists to check, so importing it would make the trust
// anchor circular.
var oracleAllowedImports = map[string]bool{
	"errors":                  true,
	"fmt":                     true,
	"math":                    true,
	"sort":                    true,
	"sinrconn/internal/geom":  true,
	"sinrconn/internal/phys":  true,
	"sinrconn/internal/tree":  true,
}

// oracleBannedCalls are fast-path entry points the oracle must not call even
// though they are reachable through its allowed imports (phys.PowAlpha and
// friends): the oracle's physics must be the naive math.Pow/math.Hypot
// formulation, never the kernel's unrolled integer-power path.
var oracleBannedCalls = map[string]bool{
	"PowAlpha":    true,
	"PowAlphaSq":  true,
	"MinPower":    true,
	"SafePower":   true,
	"DistSq":      true,
	"DistAlpha":   true,
	"LengthAlpha": true,
}

// OraclePurity enforces DESIGN.md §11.1: internal/oracle may import only
// data-type packages and must compute its physics naively.
var OraclePurity = &analysis.Analyzer{
	Name: "oraclepurity",
	Doc:  "internal/oracle may import only data-type packages and must use naive math, never kernel fast paths",
	Run:  runOraclePurity,
}

func runOraclePurity(pass *analysis.Pass) error {
	if pass.PkgPath != oraclePkg {
		return nil
	}
	allowed := make([]string, 0, len(oracleAllowedImports))
	for p := range oracleAllowedImports {
		allowed = append(allowed, p)
	}
	sort.Strings(allowed)
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !oracleAllowedImports[path] {
				pass.Reportf(imp.Pos(), "oracle may not import %q (allowed: %s)", path, strings.Join(allowed, ", "))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if oracleBannedCalls[sel.Sel.Name] {
				pass.Reportf(call.Pos(), "oracle must not call fast-path %s; use naive math.Pow/math.Hypot", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
