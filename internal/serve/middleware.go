package serve

// Hardening middleware (DESIGN.md §13): panic recovery (outermost) and
// the HTTP-layer fault-injection sites. Both wrap the whole route
// table; admission control (limiter.go) and the per-session circuit
// breaker (breaker.go) sit inside, per endpoint.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sinrconn/internal/faults"
)

// recoverPanics converts handler panics into JSON 500s and a
// serve_panics_total tick instead of letting net/http kill the
// connection (or, on a shared mux goroutine bug, the process).
// http.ErrAbortHandler is re-raised: it is the sanctioned "abort this
// connection" signal (the serve.conn.reset fault injects it), and
// net/http suppresses its stack trace.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pw := &panicWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			//lint:ignore errdiscipline ErrAbortHandler is a panic value compared by identity, never wrapped (net/http's own idiom)
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.metrics.panics.Add(1)
			if !pw.wrote {
				pw.Header().Set("Content-Type", "application/json")
				pw.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(pw).Encode(ErrorJSON{Error: fmt.Sprintf("internal error: panic: %v", v)})
				return
			}
			// Headers already went out: a 500 can no longer be written.
			// Abort the connection so the client sees a broken transfer
			// instead of a silently truncated 200.
			panic(http.ErrAbortHandler)
		}()
		next.ServeHTTP(pw, r)
	})
}

// panicWriter records whether the response was started, so the
// recovery middleware knows whether a 500 can still be written.
type panicWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *panicWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *panicWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes.
func (w *panicWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// injectFaults is the HTTP-layer fault middleware: on operation
// endpoints (/v1/…) it consults the configured injector at the
// serve.handler.delay site (stall the request) and the
// serve.conn.reset site (abort the connection via http.ErrAbortHandler,
// which the client observes as a reset/EOF mid-request). /healthz and
// /metrics are exempt so operators keep a clean view of a chaotic
// server. With no injector configured the middleware vanishes.
func (s *Server) injectFaults(next http.Handler) http.Handler {
	inj := s.cfg.Injector
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if act, ok := inj.Fire(faults.ServeHandlerDelay); ok {
				time.Sleep(act.Delay)
			}
			if _, ok := inj.Fire(faults.ServeConnReset); ok {
				panic(http.ErrAbortHandler)
			}
		}
		next.ServeHTTP(w, r)
	})
}
