package serve

// Per-session circuit breaker (DESIGN.md §13.5). A session whose
// operations keep exhausting retries (ErrRetryExhausted — the Las
// Vegas ladder gave up) or timing out is burning full compute budgets
// on answers it never gets; the breaker cuts it off after k
// CONSECUTIVE such failures. While open, requests on the session are
// rejected with 503 until a deterministic, seeded number of rejections
// has passed — a probe schedule counted in requests, not wall time, so
// there is no clock in the state machine and a replay of the same
// request sequence trips and recovers identically. The first request
// after the rejection budget drains is the half-open probe: its
// success closes the breaker, another qualifying failure reopens it
// with a doubled (capped) budget.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"

	"sinrconn"
)

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breakerBaseBudget is the first episode's rejection budget; each
// reopening doubles it up to breakerMaxBudgetShift doublings. The
// seeded jitter adds [0, base) so distinct sessions (distinct seeds)
// de-synchronize their probes.
const (
	breakerBaseBudget     = 4
	breakerMaxBudgetShift = 5
)

// breaker is one session's circuit-breaker state machine. All methods
// are safe for concurrent use; decisions depend only on the sequence
// of allow/record calls and the seed, never on the clock.
type breaker struct {
	mu        sync.Mutex
	threshold int
	seed      int64

	state   breakerState
	consec  int    // consecutive qualifying failures while closed
	episode uint64 // times opened
	budget  int    // rejections left before half-opening
	probing bool   // half-open: a probe is in flight
}

func newBreaker(threshold int, seed int64) *breaker {
	return &breaker{threshold: threshold, seed: seed}
}

// breakerSeed derives a per-session breaker seed from the server seed,
// so probe schedules differ across sessions but replay per session.
func breakerSeed(serverSeed int64, sessionID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(sessionID))
	return serverSeed ^ int64(h.Sum64())
}

// probeBudget is episode e's rejection budget: base doubled per
// reopening (capped) plus seeded jitter in [0, base).
func (b *breaker) probeBudget(episode uint64) int {
	shift := episode - 1
	if shift > breakerMaxBudgetShift {
		shift = breakerMaxBudgetShift
	}
	jitter := splitmix64(uint64(b.seed)^(episode*0x9e3779b97f4a7c15)) % breakerBaseBudget
	return breakerBaseBudget<<shift + int(jitter)
}

// allow reports whether a request on the session may proceed. When it
// may not, remaining is the rejection count left before the half-open
// probe (the Retry-After hint). probe reports that this request IS the
// half-open probe.
func (b *breaker) allow() (ok bool, probe bool, remaining int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, 0
	case breakerOpen:
		b.budget--
		if b.budget > 0 {
			return false, false, b.budget
		}
		b.state = breakerHalfOpen
		b.probing = false
		return false, false, 0
	default: // breakerHalfOpen
		if b.probing {
			return false, false, 1
		}
		b.probing = true
		return true, true, 0
	}
}

// record feeds an operation outcome into the state machine.
// qualifying failures are counted; a success resets (closed) or closes
// (half-open probe succeeded); neutral outcomes (client cancels,
// validation errors) change nothing except releasing a probe slot.
func (b *breaker) record(outcome breakerOutcome) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		switch outcome {
		case breakerSuccess:
			b.consec = 0
		case breakerFailure:
			b.consec++
			if b.consec >= b.threshold {
				b.open()
				return true
			}
		}
	case breakerHalfOpen:
		if !b.probing {
			// A late outcome from a request admitted before the breaker
			// opened; it carries no probe information.
			return false
		}
		switch outcome {
		case breakerSuccess:
			b.state = breakerClosed
			b.consec = 0
			b.probing = false
		case breakerFailure:
			b.open()
			return true
		default:
			// The probe never finished (canceled): let another run.
			b.probing = false
		}
	}
	// breakerOpen: outcomes of requests admitted earlier carry no new
	// information — the breaker already decided.
	return false
}

// open transitions to the open state (caller holds b.mu).
func (b *breaker) open() {
	b.state = breakerOpen
	b.episode++
	b.budget = b.probeBudget(b.episode)
	b.probing = false
	b.consec = 0
}

// splitmix64 mirrors faults.splitmix64 for the probe jitter (kept
// local: serve must not reach into the injection framework's internals
// for its own determinism needs).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// breakerOutcome classifies an operation result for the breaker.
type breakerOutcome uint8

const (
	breakerNeutral breakerOutcome = iota
	breakerSuccess
	breakerFailure
)

// classifyBreaker maps an operation error to a breaker outcome.
// Qualifying failures are the "this session keeps eating full compute
// budgets for nothing" signals: retry exhaustion and deadline
// timeouts. Client cancels and validation errors are neutral — they
// say nothing about the session's health.
func classifyBreaker(err error) breakerOutcome {
	switch {
	case err == nil:
		return breakerSuccess
	case errors.Is(err, sinrconn.ErrRetryExhausted):
		return breakerFailure
	case errors.Is(err, context.DeadlineExceeded):
		return breakerFailure
	default:
		return breakerNeutral
	}
}

// breakerAdmit gates an operation on the session's breaker, writing
// the 503 rejection when open. True means proceed.
func (s *Server) breakerAdmit(w http.ResponseWriter, sess *session) bool {
	if sess.brk == nil {
		return true
	}
	ok, probe, remaining := sess.brk.allow()
	if probe {
		s.metrics.breakerProbes.Add(1)
	}
	if ok {
		return true
	}
	s.metrics.breakerRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	w.Header().Set(ShedHeader, "breaker")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(ErrorJSON{Error: fmt.Sprintf(
		"session circuit breaker open (%d rejections until probe)", remaining)})
	return false
}

// breakerRecord feeds an operation's outcome into the session breaker
// and counts openings.
func (s *Server) breakerRecord(sess *session, err error) {
	if sess.brk == nil {
		return
	}
	if sess.brk.record(classifyBreaker(err)) {
		s.metrics.breakerOpened.Add(1)
	}
}
