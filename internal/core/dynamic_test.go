package core

import (
	"context"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// splitInstance builds a uniform instance and returns it along with a
// bi-tree over the first (n - k) nodes, leaving the last k as joiners.
func splitInstance(t *testing.T, seed int64, n, k int) (*sinr.Instance, *InitResult, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := workload.UniformDensity(rng, n, 0.15)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	base := make([]int, 0, n-k)
	joiners := make([]int, 0, k)
	for i := 0; i < n; i++ {
		if i < n-k {
			base = append(base, i)
		} else {
			joiners = append(joiners, i)
		}
	}
	res, err := Init(context.Background(), in, InitConfig{Seed: seed, Participants: base})
	if err != nil {
		t.Fatal(err)
	}
	return in, res, joiners
}

func checkFullBiTree(t *testing.T, in *sinr.Instance, bt interface {
	Validate() error
	ValidateOrdering() error
	StronglyConnected() bool
	ValidatePerSlotFeasible(*sinr.Instance) error
}) {
	t.Helper()
	if err := bt.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if err := bt.ValidateOrdering(); err != nil {
		t.Fatalf("ordering invalid: %v", err)
	}
	if !bt.StronglyConnected() {
		t.Fatal("not strongly connected")
	}
	if err := bt.ValidatePerSlotFeasible(in); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
}

func TestJoinAttachesAll(t *testing.T) {
	in, res, joiners := splitInstance(t, 60, 48, 8)
	jres, err := Join(context.Background(), in, res.Tree, joiners, InitConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if jres.Attached != 8 {
		t.Fatalf("attached %d of 8", jres.Attached)
	}
	if len(jres.Tree.Nodes) != 48 {
		t.Fatalf("merged tree spans %d nodes", len(jres.Tree.Nodes))
	}
	checkFullBiTree(t, in, jres.Tree)
	if _, err := jres.Tree.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay: %v", err)
	}
	if jres.SlotsUsed <= 0 || jres.Rounds <= 0 {
		t.Errorf("metrics: %+v", jres)
	}
}

func TestJoinEmpty(t *testing.T) {
	in, res, _ := splitInstance(t, 61, 24, 4)
	jres, err := Join(context.Background(), in, res.Tree, nil, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jres.Attached != 0 || len(jres.Tree.Up) != len(res.Tree.Up) {
		t.Errorf("empty join changed the tree: %+v", jres)
	}
}

func TestJoinValidation(t *testing.T) {
	in, res, _ := splitInstance(t, 62, 16, 4)
	if _, err := Join(context.Background(), in, res.Tree, []int{999}, InitConfig{}); err == nil {
		t.Error("out-of-range joiner accepted")
	}
	if _, err := Join(context.Background(), in, res.Tree, []int{res.Tree.Root}, InitConfig{}); err == nil {
		t.Error("member joiner accepted")
	}
	if _, err := Join(context.Background(), in, res.Tree, []int{14, 14}, InitConfig{}); err == nil {
		t.Error("duplicate joiner accepted")
	}
}

func TestJoinChained(t *testing.T) {
	// Joiners far from the tree but close to each other must attach in a
	// chain (joiner-under-joiner), which exercises the decreasing-stamp
	// ordering argument.
	var pts []geom.Point
	pts = append(pts, workload.GridPoints(3, 3, 2)...) // tree cluster, nodes 0-8
	base := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	// Chain of joiners leading away.
	for i := 1; i <= 4; i++ {
		pts = append(pts, geom.Point{X: 4 + float64(i)*3, Y: 2})
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	res, err := Init(context.Background(), in, InitConfig{Seed: 3, Participants: base})
	if err != nil {
		t.Fatal(err)
	}
	jres, err := Join(context.Background(), in, res.Tree, []int{9, 10, 11, 12}, InitConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkFullBiTree(t, in, jres.Tree)
	if _, err := jres.Tree.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay after chained join: %v", err)
	}
}

func TestJoinDeterministic(t *testing.T) {
	in, res, joiners := splitInstance(t, 63, 32, 6)
	a, err := Join(context.Background(), in, res.Tree, joiners, InitConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(context.Background(), in, res.Tree, joiners, InitConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.SlotsUsed != b.SlotsUsed || len(a.Tree.Up) != len(b.Tree.Up) {
		t.Fatal("join not deterministic")
	}
}

func TestRepairInteriorFailure(t *testing.T) {
	in, res, _ := splitInstance(t, 64, 48, 0)
	bt := res.Tree
	// Fail a non-root node with children (an interior node).
	children := bt.Children()
	victim := -1
	for v, ch := range children {
		if v != bt.Root && len(ch) > 0 {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no interior node in this tree")
	}
	rres, err := Repair(context.Background(), in, bt, []int{victim}, InitConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rres.NewRoot != bt.Root {
		t.Errorf("root changed: %d", rres.NewRoot)
	}
	if len(rres.Tree.Nodes) != 47 {
		t.Errorf("repaired tree spans %d nodes", len(rres.Tree.Nodes))
	}
	if rres.OrphanRoots < 1 {
		t.Errorf("orphan roots = %d", rres.OrphanRoots)
	}
	checkFullBiTree(t, in, rres.Tree)
	if _, err := rres.Tree.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay after repair: %v", err)
	}
}

func TestRepairRootFailure(t *testing.T) {
	in, res, _ := splitInstance(t, 65, 40, 0)
	bt := res.Tree
	rres, err := Repair(context.Background(), in, bt, []int{bt.Root}, InitConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rres.NewRoot == bt.Root {
		t.Error("failed root still root")
	}
	if len(rres.Tree.Nodes) != 39 {
		t.Errorf("repaired tree spans %d nodes", len(rres.Tree.Nodes))
	}
	checkFullBiTree(t, in, rres.Tree)
}

func TestRepairLeafFailure(t *testing.T) {
	// Failing a leaf orphans nobody: repair is pure surgery plus restamp.
	in, res, _ := splitInstance(t, 66, 32, 0)
	bt := res.Tree
	children := bt.Children()
	leaf := -1
	for _, v := range bt.Nodes {
		if v != bt.Root && len(children[v]) == 0 {
			leaf = v
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf found")
	}
	rres, err := Repair(context.Background(), in, bt, []int{leaf}, InitConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rres.OrphanRoots != 0 || rres.SlotsUsed != 0 {
		t.Errorf("leaf failure should need no channel time: %+v", rres)
	}
	checkFullBiTree(t, in, rres.Tree)
}

func TestRepairMultipleFailures(t *testing.T) {
	in, res, _ := splitInstance(t, 67, 48, 0)
	bt := res.Tree
	// Fail three random non-root nodes.
	rng := rand.New(rand.NewSource(1))
	var failed []int
	seen := map[int]bool{bt.Root: true}
	for len(failed) < 3 {
		v := bt.Nodes[rng.Intn(len(bt.Nodes))]
		if !seen[v] {
			seen[v] = true
			failed = append(failed, v)
		}
	}
	rres, err := Repair(context.Background(), in, bt, failed, InitConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Tree.Nodes) != 45 {
		t.Errorf("repaired tree spans %d nodes", len(rres.Tree.Nodes))
	}
	checkFullBiTree(t, in, rres.Tree)
}

func TestRepairValidation(t *testing.T) {
	in, res, _ := splitInstance(t, 68, 16, 0)
	if _, err := Repair(context.Background(), in, res.Tree, []int{999}, InitConfig{}); err == nil {
		t.Error("unknown failed node accepted")
	}
	all := append([]int(nil), res.Tree.Nodes...)
	if _, err := Repair(context.Background(), in, res.Tree, all, InitConfig{}); err == nil {
		t.Error("total failure accepted")
	}
}

func TestRepairDuplicateFailedTolerated(t *testing.T) {
	// Churn traces compose bursts with single failures, so the same node is
	// routinely reported dead twice; repair must treat {v, v} as {v}.
	victim := -1
	in, res, _ := splitInstance(t, 68, 16, 0)
	for _, v := range res.Tree.Nodes {
		if v != res.Tree.Root {
			victim = v
			break
		}
	}
	dup, err := Repair(context.Background(), in, res.Tree, []int{victim, victim}, InitConfig{Seed: 9})
	if err != nil {
		t.Fatalf("duplicate failed node rejected: %v", err)
	}
	single, err := Repair(context.Background(), in, res.Tree, []int{victim}, InitConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Tree.Nodes) != len(single.Tree.Nodes) || dup.OrphanRoots != single.OrphanRoots {
		t.Fatalf("duplicate-failed repair diverged: %d nodes / %d orphans vs %d / %d",
			len(dup.Tree.Nodes), dup.OrphanRoots, len(single.Tree.Nodes), single.OrphanRoots)
	}
	checkFullBiTree(t, in, dup.Tree)
}

func TestRestampProducesValidSchedule(t *testing.T) {
	// Scramble the stamps of a valid tree, then Restamp must restore
	// ordering and feasibility.
	in, res, _ := splitInstance(t, 69, 40, 0)
	bt := res.Tree
	rng := rand.New(rand.NewSource(2))
	for i := range bt.Up {
		bt.Up[i].Slot = rng.Intn(5)
	}
	k, err := bt.Restamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > len(bt.Up) {
		t.Errorf("restamped length = %d", k)
	}
	checkFullBiTree(t, in, bt)
	if _, err := bt.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay after restamp: %v", err)
	}
}

func TestRestampShorterThanSerial(t *testing.T) {
	// Restamp should exploit spatial reuse: on a spread-out instance the
	// schedule must be shorter than one-slot-per-link.
	in, res, _ := splitInstance(t, 70, 64, 0)
	bt := res.Tree
	k, err := bt.Restamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if k >= len(bt.Up) {
		t.Errorf("restamp found no spatial reuse: %d slots for %d links", k, len(bt.Up))
	}
}

func TestRepairLinksReattaches(t *testing.T) {
	in, res, _ := splitInstance(t, 71, 40, 0)
	bt := res.Tree
	// Fail the out-link of a node with a subtree.
	children := bt.Children()
	var failed sinr.Link
	found := false
	for _, tl := range bt.Up {
		if len(children[tl.L.From]) > 0 {
			failed = tl.L
			found = true
			break
		}
	}
	if !found {
		t.Skip("no interior out-link")
	}
	rres, err := RepairLinks(context.Background(), in, bt, []sinr.Link{failed}, InitConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Tree.Nodes) != 40 {
		t.Fatalf("repaired tree spans %d nodes", len(rres.Tree.Nodes))
	}
	if rres.OrphanRoots != 1 {
		t.Errorf("orphan roots = %d", rres.OrphanRoots)
	}
	checkFullBiTree(t, in, rres.Tree)
	// The failed link must not be in the repaired tree.
	for _, tl := range rres.Tree.Up {
		if tl.L == failed {
			t.Fatal("permanently failed link re-formed")
		}
	}
	if _, err := rres.Tree.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay: %v", err)
	}
}

func TestRepairLinksMultiple(t *testing.T) {
	in, res, _ := splitInstance(t, 72, 48, 0)
	bt := res.Tree
	var failed []sinr.Link
	for _, tl := range bt.Up {
		failed = append(failed, tl.L)
		if len(failed) == 3 {
			break
		}
	}
	rres, err := RepairLinks(context.Background(), in, bt, failed, InitConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkFullBiTree(t, in, rres.Tree)
	inRepaired := map[sinr.Link]bool{}
	for _, tl := range rres.Tree.Up {
		inRepaired[tl.L] = true
	}
	for _, l := range failed {
		if inRepaired[l] {
			t.Fatalf("failed link %v re-formed", l)
		}
	}
}

func TestRepairLinksValidation(t *testing.T) {
	in, res, _ := splitInstance(t, 73, 16, 0)
	if _, err := RepairLinks(context.Background(), in, res.Tree, []sinr.Link{{From: 98, To: 99}}, InitConfig{}); err == nil {
		t.Error("unknown link accepted")
	}
	// Duplicate failed links are tolerated ({l, l} ≡ {l}): link showers
	// under churn routinely report the same link down twice.
	l := res.Tree.Up[0].L
	if _, err := RepairLinks(context.Background(), in, res.Tree, []sinr.Link{l, l}, InitConfig{Seed: 11}); err != nil {
		t.Errorf("duplicate failed link rejected: %v", err)
	}
	// Empty failure set: pure restamp, no channel time.
	rres, err := RepairLinks(context.Background(), in, res.Tree, nil, InitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rres.SlotsUsed != 0 || rres.OrphanRoots != 0 {
		t.Errorf("empty link repair: %+v", rres)
	}
}
