package lint

import (
	"go/ast"
	"go/types"

	"sinrconn/internal/lint/analysis"
)

// determinismPkgs are the packages whose outputs must be bit-replayable:
// churn traces, schedules, and workloads are compared run-to-run by the
// metamorphic and differential gates, so nothing in them may read the wall
// clock, draw from the process-global RNG, or let map iteration order leak
// into results.
var determinismPkgs = map[string]bool{
	"sinrconn/internal/core":     true,
	"sinrconn/internal/sinr":     true,
	"sinrconn/internal/churn":    true,
	"sinrconn/internal/workload": true,
	"sinrconn/internal/faults":   true,
}

// timeBanned are the wall-clock entry points of package time. Duration
// arithmetic and constants stay legal; only reading the clock is not.
var timeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true,
}

// randAllowed are the math/rand constructors that take an explicit source or
// seed; every other package-level function draws from the unseeded global.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism enforces DESIGN.md §11.3: replay-identical packages may not
// call time.Now, use the global math/rand source, or range over maps.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "replayed packages may not read the clock, use unseeded rand, or iterate maps into results",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	if !determinismPkgs[pass.PkgPath] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if name := pkgCall(pass, file, node, "time"); timeBanned[name] {
					pass.Reportf(node.Pos(), "wall-clock read time.%s in a replay-deterministic package; thread timestamps in from the caller", name)
				}
				for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
					if name := pkgCall(pass, file, node, randPkg); name != "" && !randAllowed[name] {
						pass.Reportf(node.Pos(), "rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed))", name)
					}
				}
			case *ast.BlockStmt:
				checkMapRanges(pass, file, node.List)
			case *ast.CaseClause:
				checkMapRanges(pass, file, node.Body)
			case *ast.CommClause:
				checkMapRanges(pass, file, node.Body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges flags range-over-map statements, allowing the one idiom
// whose output provably cannot depend on iteration order: collecting the
// keys into a slice that the next statement sorts.
func checkMapRanges(pass *analysis.Pass, file *ast.File, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		if lbl, ok := stmt.(*ast.LabeledStmt); ok {
			stmt = lbl.Stmt
		}
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if isKeyCollectThenSort(pass, file, rs, stmts[i+1:]) {
			continue
		}
		pass.Reportf(rs.Pos(), "map iteration order is random and feeds package output; collect keys and sort, or use a slice")
	}
}

// isKeyCollectThenSort matches
//
//	for k := range m { keys = append(keys, k) }
//	sort.Xxx(keys) / slices.Sort(keys)
//
// where the set of appended keys — and after sorting, the slice itself — is
// independent of iteration order.
func isKeyCollectThenSort(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	target, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg0, ok0 := call.Args[0].(*ast.Ident)
	arg1, ok1 := call.Args[1].(*ast.Ident)
	if !ok0 || !ok1 || arg0.Name != target.Name || arg1.Name != key.Name {
		return false
	}
	if len(rest) == 0 {
		return false
	}
	next, ok := rest[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := next.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sorted, ok := sortCall.Args[0].(*ast.Ident)
	if !ok || sorted.Name != target.Name {
		return false
	}
	return pkgCall(pass, file, sortCall, "sort") != "" || pkgCall(pass, file, sortCall, "slices") != ""
}
