package sparsity

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

func lineInstance(t testing.TB, xs ...float64) *sinr.Instance {
	t.Helper()
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func TestMeasureEmpty(t *testing.T) {
	in := lineInstance(t, 0, 1)
	if got := Measure(in, nil); got != 0 {
		t.Errorf("Measure(empty) = %d", got)
	}
	if got := MeasureAtScales(in, nil); got != 0 {
		t.Errorf("MeasureAtScales(empty) = %d", got)
	}
}

func TestMeasureSingleLink(t *testing.T) {
	in := lineInstance(t, 0, 16)
	links := []sinr.Link{{From: 0, To: 1}}
	if got := Measure(in, links); got != 1 {
		t.Errorf("Measure(single) = %d, want 1", got)
	}
}

func TestMeasureParallelCluster(t *testing.T) {
	// Five long parallel links whose left endpoints are packed within a
	// small ball: ψ must count all five.
	var pts []geom.Point
	var links []sinr.Link
	for i := 0; i < 5; i++ {
		y := float64(i) * 1.0
		pts = append(pts, geom.Point{X: 0, Y: y}, geom.Point{X: 100, Y: y})
		links = append(links, sinr.Link{From: 2 * i, To: 2*i + 1})
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	got := Measure(in, links)
	if got != 5 {
		t.Errorf("Measure(packed cluster) = %d, want 5", got)
	}
}

func TestMeasureSpreadLinks(t *testing.T) {
	// Unit links spread very far apart: no ball of radius len/8 = 1/8
	// catches endpoints of two different links, so ψ = 1.
	var pts []geom.Point
	var links []sinr.Link
	for i := 0; i < 6; i++ {
		x := float64(i) * 1000
		pts = append(pts, geom.Point{X: x}, geom.Point{X: x + 1})
		links = append(links, sinr.Link{From: 2 * i, To: 2*i + 1})
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	if got := Measure(in, links); got != 1 {
		t.Errorf("Measure(spread) = %d, want 1", got)
	}
}

func TestMeasureAtScalesAgreesRoughly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 24
		pts := make([]geom.Point, 0, n)
		for len(pts) < n {
			cand := geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
			ok := true
			for _, p := range pts {
				if p.Dist(cand) < 1 {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
			}
		}
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		var links []sinr.Link
		for i := 0; i+1 < n; i += 2 {
			links = append(links, sinr.Link{From: i, To: i + 1})
		}
		exact := Measure(in, links)
		scaled := MeasureAtScales(in, links)
		if exact < 1 || scaled < 1 {
			t.Fatalf("trial %d: ψ below 1: exact %d scaled %d", trial, exact, scaled)
		}
		// The power-of-two grid can over- or under-shoot by a doubling in
		// radius; allow a generous envelope around the exact value.
		if scaled > 4*exact || exact > 8*scaled {
			t.Fatalf("trial %d: exact %d vs scaled %d diverge", trial, exact, scaled)
		}
	}
}

func TestIsIndependent(t *testing.T) {
	in := lineInstance(t, 0, 1, 1000, 1001)
	a := sinr.Link{From: 0, To: 1}
	b := sinr.Link{From: 2, To: 3}
	if !IsIndependent(in, a, b, 3) {
		t.Error("far unit links should be 3-independent")
	}
	// A link is never q-independent of itself for q > 1.
	if IsIndependent(in, a, a, 2) {
		t.Error("link independent of itself")
	}
	// Adjacent links of similar length are not independent for large q.
	in2 := lineInstance(t, 0, 4, 5, 9)
	c := sinr.Link{From: 0, To: 1}
	d := sinr.Link{From: 2, To: 3}
	if IsIndependent(in2, c, d, 10) {
		t.Error("adjacent links should not be 10-independent")
	}
}

func TestIndependentPartitionCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 0, 30)
	for len(pts) < 30 {
		cand := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	var links []sinr.Link
	for i := 0; i+1 < 30; i += 2 {
		links = append(links, sinr.Link{From: i, To: i + 1})
	}
	classes := IndependentPartition(in, links, 2)
	total := 0
	for _, cl := range classes {
		total += len(cl)
		// Every pair within a class must be pairwise independent.
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				if !IsIndependent(in, cl[i], cl[j], 2) && !IsIndependent(in, cl[j], cl[i], 2) {
					t.Fatalf("class contains dependent pair %v %v", cl[i], cl[j])
				}
			}
		}
	}
	if total != len(links) {
		t.Fatalf("partition covers %d of %d links", total, len(links))
	}
}

func TestIndependentPartitionFarLinksOneClass(t *testing.T) {
	in := lineInstance(t, 0, 1, 5000, 5001, 10000, 10001)
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}}
	classes := IndependentPartition(in, links, 2)
	if len(classes) != 1 {
		t.Errorf("far links split into %d classes, want 1", len(classes))
	}
}

func TestLengthClasses(t *testing.T) {
	in := lineInstance(t, 0, 1.5, 10, 13, 100, 164)
	links := []sinr.Link{
		{From: 0, To: 1}, // len 1.5  → class 1
		{From: 2, To: 3}, // len 3    → class 2
		{From: 4, To: 5}, // len 64   → class 7
	}
	classes := LengthClasses(in, links)
	if len(classes[1]) != 1 || len(classes[2]) != 1 || len(classes[7]) != 1 {
		t.Errorf("LengthClasses = %v", classes)
	}
}

func TestSparsityScalesWithStacking(t *testing.T) {
	// k co-located long-link endpoints produce ψ = k; verify monotone
	// growth as we stack more.
	build := func(k int) (psi int) {
		var pts []geom.Point
		var links []sinr.Link
		for i := 0; i < k; i++ {
			pts = append(pts,
				geom.Point{X: 0, Y: float64(i)},
				geom.Point{X: 200, Y: float64(i)})
			links = append(links, sinr.Link{From: 2 * i, To: 2*i + 1})
		}
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		return Measure(in, links)
	}
	prev := 0
	for _, k := range []int{1, 3, 6} {
		got := build(k)
		if got < prev {
			t.Fatalf("sparsity not monotone: ψ(%d) = %d after %d", k, got, prev)
		}
		if got != k {
			t.Errorf("ψ(%d stacked links) = %d, want %d", k, got, k)
		}
		prev = got
	}
}
