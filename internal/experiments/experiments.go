package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sinrconn/internal/core"
	"sinrconn/internal/geom"
	"sinrconn/internal/power"
	"sinrconn/internal/schedule"
	"sinrconn/internal/sinr"
	"sinrconn/internal/sparsity"
	"sinrconn/internal/stats"
	"sinrconn/internal/tree"
	"sinrconn/internal/workload"
)

// Config scales the experiment sweeps.
type Config struct {
	// Seeds is the number of trials per sweep cell (default 3).
	Seeds int
	// Sizes is the n sweep (default {32, 64, 128, 256}).
	Sizes []int
	// DeltaExps is the Δ sweep as exponents: Δ = 2^e (default {8, 12, 16, 20}).
	DeltaExps []int
	// ChainN is the node count used for Δ sweeps (default 48).
	ChainN int
	// Workers bounds simulator parallelism.
	Workers int
}

func (c *Config) defaults() {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{32, 64, 128, 256}
	}
	if len(c.DeltaExps) == 0 {
		c.DeltaExps = []int{8, 12, 16, 20}
	}
	if c.ChainN <= 0 {
		c.ChainN = 48
	}
}

// Quick returns a configuration small enough for unit tests.
func Quick() Config {
	return Config{Seeds: 2, Sizes: []int{24, 48}, DeltaExps: []int{8, 14}, ChainN: 24}
}

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier (E1…E14, A1…A5).
	ID string
	// Title names the claim under test.
	Title string
	// Claim quotes the paper bound being reproduced.
	Claim string
	// Table holds the measured rows.
	Table *stats.Table
	// Notes carries derived quantities (fits, ratios).
	Notes []string
	// Pass is the shape-check verdict.
	Pass bool
}

// Render formats the report for the terminal / EXPERIMENTS.md.
func (r Report) Render() string {
	s := fmt.Sprintf("## %s — %s\n\nClaim: %s\n\n%s\n", r.ID, r.Title, r.Claim, r.Table.Render())
	for _, n := range r.Notes {
		s += "- " + n + "\n"
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return s + fmt.Sprintf("- shape check: **%s**\n", verdict)
}

// All runs every experiment.
func All(ctx context.Context, cfg Config) []Report {
	return []Report{
		E1InitSlots(ctx, cfg),
		E2BiTreeValidity(ctx, cfg),
		E3DegreeTail(ctx, cfg),
		E4Sparsity(ctx, cfg),
		E5LowDegreeFilter(ctx, cfg),
		E6MeanReschedule(ctx, cfg),
		E7Iterations(ctx, cfg),
		E8ArbitraryPower(ctx, cfg),
		E9MeanPower(ctx, cfg),
		E10Crossover(ctx, cfg),
		E11Latency(ctx, cfg),
		E12CapacityRatio(ctx, cfg),
		E13Energy(ctx, cfg),
		E14PhysicalEpoch(ctx, cfg),
		E15SessionMatrix(ctx, cfg),
		E16FarField(ctx, cfg),
	}
}

// uniformInst builds a uniform instance with min distance 1.
func uniformInst(seed int64, n int) *sinr.Instance {
	rng := rand.New(rand.NewSource(seed))
	return sinr.MustInstance(workload.UniformDensity(rng, n, 0.15), sinr.DefaultParams())
}

func chainInst(n int, delta float64) *sinr.Instance {
	return sinr.MustInstance(workload.ChainForDelta(n, delta), sinr.DefaultParams())
}

// E1InitSlots measures Theorem 2: Init finishes in O(log Δ · log n) slots.
// The table sweeps n on uniform instances and Δ on chains; the normalized
// column slots/(log Δ·log n) must stay bounded while raw slots grow.
func E1InitSlots(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E1",
		Title: "Init construction time",
		Claim: "Theorem 2: bi-tree computed in O(log Δ · log n) slots",
		Table: stats.NewTable("workload", "n", "Δ", "slots", "slots/(log Δ·log n)"),
	}
	var ns, slots []float64
	var ratios []float64
	for _, n := range cfg.Sizes {
		var cell []float64
		var delta float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(100*n+s), n)
			delta = in.Delta()
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				r.Notes = append(r.Notes, "ERROR: "+err.Error())
				return r
			}
			cell = append(cell, float64(res.SlotsUsed))
		}
		mean := stats.Summarize(cell).Mean
		norm := mean / (math.Log2(math.Max(2, delta)) * math.Log2(float64(n)))
		r.Table.AddRow("uniform", n, fmt.Sprintf("%.0f", delta), fmt.Sprintf("%.0f", mean), norm)
		ns = append(ns, float64(n))
		slots = append(slots, mean)
		ratios = append(ratios, norm)
	}
	for _, e := range cfg.DeltaExps {
		delta := math.Exp2(float64(e))
		in := chainInst(cfg.ChainN, delta)
		var cell []float64
		for s := 0; s < cfg.Seeds; s++ {
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				r.Notes = append(r.Notes, "ERROR: "+err.Error())
				return r
			}
			cell = append(cell, float64(res.SlotsUsed))
		}
		mean := stats.Summarize(cell).Mean
		norm := mean / (math.Log2(in.Delta()) * math.Log2(float64(cfg.ChainN)))
		r.Table.AddRow("chain", cfg.ChainN, fmt.Sprintf("2^%d", e), fmt.Sprintf("%.0f", mean), norm)
		ratios = append(ratios, norm)
	}
	exp := stats.GrowthExponent(ns, slots)
	r.Notes = append(r.Notes,
		fmt.Sprintf("slots vs n growth exponent = %.2f (want ≪ 1: polylogarithmic)", exp))
	rs := stats.Summarize(ratios)
	r.Notes = append(r.Notes,
		fmt.Sprintf("normalized ratio spread = [%.2f, %.2f] (want bounded)", rs.Min, rs.Max))
	r.Pass = exp < 0.75 && rs.Max/math.Max(rs.Min, 1e-9) < 8
	return r
}

// E2BiTreeValidity verifies the correctness half of Theorem 2 on every
// workload: spanning, strongly connected, ordered, per-slot feasible.
func E2BiTreeValidity(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E2",
		Title: "Bi-tree validity across workloads",
		Claim: "Theorem 2: output is a strongly connected bi-tree with a feasible ordered schedule",
		Table: stats.NewTable("workload", "n", "trials", "valid"),
	}
	pass := true
	n := cfg.Sizes[len(cfg.Sizes)-1]
	for _, spec := range workload.Standard() {
		valid := 0
		for s := 0; s < cfg.Seeds; s++ {
			rng := rand.New(rand.NewSource(int64(300 + s)))
			in := sinr.MustInstance(spec.Gen(rng, n), sinr.DefaultParams())
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			bt := res.Tree
			if bt.Validate() == nil && bt.StronglyConnected() &&
				bt.ValidateOrdering() == nil && bt.ValidatePerSlotFeasible(in) == nil {
				valid++
			}
		}
		r.Table.AddRow(spec.Name, n, cfg.Seeds, valid)
		if valid != cfg.Seeds {
			pass = false
		}
	}
	r.Pass = pass
	return r
}

// E3DegreeTail measures Theorem 7: P(deg ≥ d) ≤ e^(-p²d/8), so the max
// degree is O(log n) and the empirical tail decays geometrically.
func E3DegreeTail(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E3",
		Title: "Node degree distribution",
		Claim: "Theorem 7: exponential degree tail; max degree O(log n) w.h.p.",
		Table: stats.NewTable("n", "max deg", "mean deg", "P(deg≥4)", "P(deg≥8)", "maxdeg/log₂n"),
	}
	worstNorm := 0.0
	tailOK := true
	for _, n := range cfg.Sizes {
		var maxDegs []float64
		var meanDegs []float64
		tail4, tail8, total := 0, 0, 0
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(500*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			deg := res.Tree.Degrees()
			sum := 0
			md := 0
			for _, d := range deg {
				sum += d
				total++
				if d >= 4 {
					tail4++
				}
				if d >= 8 {
					tail8++
				}
				if d > md {
					md = d
				}
			}
			maxDegs = append(maxDegs, float64(md))
			meanDegs = append(meanDegs, float64(sum)/float64(len(deg)))
		}
		maxMean := stats.Summarize(maxDegs).Mean
		norm := maxMean / math.Log2(float64(n))
		if norm > worstNorm {
			worstNorm = norm
		}
		p4 := float64(tail4) / float64(total)
		p8 := float64(tail8) / float64(total)
		if p8 > p4 {
			tailOK = false
		}
		r.Table.AddRow(n, fmt.Sprintf("%.1f", maxMean),
			fmt.Sprintf("%.2f", stats.Summarize(meanDegs).Mean),
			fmt.Sprintf("%.3f", p4), fmt.Sprintf("%.3f", p8), norm)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("worst maxdeg/log₂n = %.2f (want O(1))", worstNorm))
	r.Pass = worstNorm < 4 && tailOK
	return r
}

// E4Sparsity measures Theorem 11: the Init tree is O(log n)-sparse.
func E4Sparsity(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E4",
		Title: "Sparsity of the Init tree",
		Claim: "Theorem 11: T is O(log n)-sparse",
		Table: stats.NewTable("n", "ψ(T)", "ψ/log₂n"),
	}
	worst := 0.0
	for _, n := range cfg.Sizes {
		var psis []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(700*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			psis = append(psis, float64(sparsity.MeasureAtScales(in, res.Tree.Links())))
		}
		mean := stats.Summarize(psis).Mean
		norm := mean / math.Log2(float64(n))
		if norm > worst {
			worst = norm
		}
		r.Table.AddRow(n, fmt.Sprintf("%.1f", mean), norm)
	}
	r.Notes = append(r.Notes, fmt.Sprintf("worst ψ/log₂n = %.2f (want O(1))", worst))
	r.Pass = worst < 6
	return r
}

// E5LowDegreeFilter measures Theorem 13: T(M) is O(1)-sparse and retains a
// constant fraction of T.
func E5LowDegreeFilter(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E5",
		Title: "Low-degree core T(M)",
		Claim: "Theorem 13: T(M) is O(1)-sparse with E|T(M)| = Ω(|T|)",
		Table: stats.NewTable("n", "ψ(T(M))", "retention |T(M)|/|T|"),
	}
	var psis, fracs []float64
	for _, n := range cfg.Sizes {
		var cellPsi, cellFrac []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(900*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			sub := core.LowDegreeSubset(res.Tree, 0)
			links := make([]sinr.Link, len(sub))
			for i, tl := range sub {
				links[i] = tl.L
			}
			cellPsi = append(cellPsi, float64(sparsity.MeasureAtScales(in, links)))
			cellFrac = append(cellFrac, core.RetentionFraction(res.Tree, 0))
		}
		mp := stats.Summarize(cellPsi).Mean
		mf := stats.Summarize(cellFrac).Mean
		psis = append(psis, mp)
		fracs = append(fracs, mf)
		r.Table.AddRow(n, fmt.Sprintf("%.1f", mp), fmt.Sprintf("%.2f", mf))
	}
	ps := stats.Summarize(psis)
	fs := stats.Summarize(fracs)
	r.Notes = append(r.Notes,
		fmt.Sprintf("ψ(T(M)) range [%.1f, %.1f] (want flat O(1))", ps.Min, ps.Max),
		fmt.Sprintf("retention min %.2f (want bounded below)", fs.Min))
	r.Pass = ps.Max <= core.DefaultRho+1 && fs.Min > 0.4
	return r
}

// E6MeanReschedule measures Theorem 3: rescheduling T under mean power
// removes the log Δ dependence that uniform power must pay.
func E6MeanReschedule(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E6",
		Title: "Mean-power rescheduling of T",
		Claim: "Theorem 3: T reschedulable in O(Υ·log³n) slots with mean power; uniform power pays Ω(log Δ)",
		Table: stats.NewTable("Δ", "uniform FF slots", "mean FF slots", "mean distributed slots"),
	}
	var uniFirst, uniLast float64
	pass := true
	for i, e := range cfg.DeltaExps {
		delta := math.Exp2(float64(e))
		in := chainInst(cfg.ChainN, delta)
		var uni, meanFF, meanDist []float64
		for s := 0; s < cfg.Seeds; s++ {
			res, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			uni = append(uni, float64(core.UniformScheduleLength(in, res.Tree)))
			meanFF = append(meanFF, float64(core.MeanScheduleLength(in, res.Tree)))
			pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
			rres, err := core.Reschedule(ctx, in, res.Tree, pa,
				schedule.DistConfig{Seed: int64(s), Workers: cfg.Workers})
			if err == nil {
				meanDist = append(meanDist, float64(rres.NumSlots))
			}
		}
		u := stats.Summarize(uni).Mean
		mf := stats.Summarize(meanFF).Mean
		md := stats.Summarize(meanDist).Mean
		r.Table.AddRow(fmt.Sprintf("2^%d", e), fmt.Sprintf("%.1f", u),
			fmt.Sprintf("%.1f", mf), fmt.Sprintf("%.1f", md))
		if i == 0 {
			uniFirst = u
		}
		if i == len(cfg.DeltaExps)-1 {
			uniLast = u
			if mf > u {
				pass = false // mean power must beat uniform at high Δ
			}
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("uniform slots grew %.1f → %.1f across the Δ sweep (log Δ cost)", uniFirst, uniLast))
	r.Pass = pass && uniLast >= uniFirst
	return r
}

// E7Iterations measures Theorem 12: TreeViaCapacity ends in O((1/δ)·log n)
// iterations.
func E7Iterations(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E7",
		Title: "TreeViaCapacity iteration count",
		Claim: "Theorem 12: O((1/δ)·log n) iterations",
		Table: stats.NewTable("n", "iterations", "iters/log₂n", "mean δ (selection fraction)"),
	}
	var ns, its []float64
	for _, n := range cfg.Sizes {
		var cellIt, cellDelta []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(1100*n+s), n)
			res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary,
				Seed:    int64(s),
				Init:    core.InitConfig{Workers: cfg.Workers},
			})
			if err != nil {
				continue
			}
			cellIt = append(cellIt, float64(res.Iterations))
			cellDelta = append(cellDelta, stats.Summarize(res.SelectionFractions).Mean)
		}
		mi := stats.Summarize(cellIt).Mean
		r.Table.AddRow(n, fmt.Sprintf("%.1f", mi),
			mi/math.Log2(float64(n)), fmt.Sprintf("%.2f", stats.Summarize(cellDelta).Mean))
		ns = append(ns, float64(n))
		its = append(its, mi)
	}
	exp := stats.GrowthExponent(ns, its)
	r.Notes = append(r.Notes,
		fmt.Sprintf("iterations vs n growth exponent = %.2f (want ≪ 1)", exp))
	r.Pass = exp < 0.7
	return r
}

// E8ArbitraryPower measures Theorems 4a/20/21: the arbitrary-power bi-tree
// schedules in O(log n) slots and the per-iteration selection keeps the
// Eqn-3 invariant power-solvable.
func E8ArbitraryPower(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E8",
		Title: "Arbitrary-power bi-tree (Distr-Cap)",
		Claim: "Theorem 4a: bi-tree found and scheduled in O(log n) slots with power control",
		Table: stats.NewTable("n", "schedule slots", "slots/log₂n", "agg latency", "construction slots"),
	}
	var ns, slots []float64
	solvable := true
	for _, n := range cfg.Sizes {
		var cellS, cellL, cellC []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(1300*n+s), n)
			res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary,
				Seed:    int64(s),
				Init:    core.InitConfig{Workers: cfg.Workers},
			})
			if err != nil {
				solvable = false
				continue
			}
			if res.Tree.ValidatePerSlotFeasible(in) != nil {
				solvable = false
			}
			cellS = append(cellS, float64(res.Tree.NumSlots()))
			if lat, err := res.Tree.AggregationLatency(); err == nil {
				cellL = append(cellL, float64(lat))
			}
			cellC = append(cellC, float64(res.ConstructionSlots))
		}
		ms := stats.Summarize(cellS).Mean
		r.Table.AddRow(n, fmt.Sprintf("%.1f", ms), ms/math.Log2(float64(n)),
			fmt.Sprintf("%.1f", stats.Summarize(cellL).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(cellC).Mean))
		ns = append(ns, float64(n))
		slots = append(slots, ms)
	}
	exp := stats.GrowthExponent(ns, slots)
	r.Notes = append(r.Notes,
		fmt.Sprintf("schedule slots vs n growth exponent = %.2f (want ≪ 1)", exp),
		fmt.Sprintf("all per-slot groups power-feasible: %v", solvable))
	r.Pass = exp < 0.7 && solvable
	return r
}

// E9MeanPower measures Theorem 4b/16: the mean-power bi-tree schedules in
// O(Υ·log n) slots.
func E9MeanPower(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E9",
		Title: "Mean-power bi-tree (Υ-sampling)",
		Claim: "Theorem 4b: bi-tree found and scheduled in O(Υ·log n) slots with mean power",
		Table: stats.NewTable("n", "schedule slots", "slots/(Υ·log₂n)", "agg latency"),
	}
	var ns, slots []float64
	ok := true
	for _, n := range cfg.Sizes {
		var cellS, cellL []float64
		var ups float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(1500*n+s), n)
			ups = in.Upsilon()
			res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantMean,
				Seed:    int64(s),
				Init:    core.InitConfig{Workers: cfg.Workers},
			})
			if err != nil {
				ok = false
				continue
			}
			if res.Tree.ValidatePerSlotFeasible(in) != nil {
				ok = false
			}
			cellS = append(cellS, float64(res.Tree.NumSlots()))
			if lat, err := res.Tree.AggregationLatency(); err == nil {
				cellL = append(cellL, float64(lat))
			}
		}
		ms := stats.Summarize(cellS).Mean
		r.Table.AddRow(n, fmt.Sprintf("%.1f", ms),
			ms/(ups*math.Log2(float64(n))),
			fmt.Sprintf("%.1f", stats.Summarize(cellL).Mean))
		ns = append(ns, float64(n))
		slots = append(slots, ms)
	}
	exp := stats.GrowthExponent(ns, slots)
	r.Notes = append(r.Notes,
		fmt.Sprintf("schedule slots vs n growth exponent = %.2f (want ≪ 1)", exp))
	r.Pass = exp < 0.7 && ok
	return r
}

// E10Crossover compares the schemes on a Δ sweep at fixed n. The shape
// claims that survive contact with the physics: (a) on the same Init tree,
// mean power never schedules worse than uniform, and the gap widens with Δ;
// (b) the Section 8 schedules (mean and arbitrary TVC) stay flat as Δ
// grows — their lengths depend on n, not Δ; (c) the distributed
// constructions are within a constant factor of the centralized MST
// baseline.
func E10Crossover(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E10",
		Title: "Power-scheme comparison on high-Δ chains",
		Claim: "Sections 7–8: mean ≤ uniform on the same tree; Section-8 schedule lengths are Δ-independent",
		Table: stats.NewTable("Δ", "uniform FF (Init tree)", "mean FF (Init tree)", "mean TVC", "arbitrary TVC", "MST mean FF (centralized)"),
	}
	var uniCol, meanFFCol, arbCol, meanTVCCol []float64
	for _, e := range cfg.DeltaExps {
		delta := math.Exp2(float64(e))
		in := chainInst(cfg.ChainN, delta)
		var uni, meanFF, meanS, arbS, mst []float64
		for s := 0; s < cfg.Seeds; s++ {
			ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err == nil {
				uni = append(uni, float64(core.UniformScheduleLength(in, ires.Tree)))
				meanFF = append(meanFF, float64(core.MeanScheduleLength(in, ires.Tree)))
			}
			if res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantMean, Seed: int64(s),
				Init: core.InitConfig{Workers: cfg.Workers},
			}); err == nil {
				meanS = append(meanS, float64(res.Tree.NumSlots()))
			}
			if res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary, Seed: int64(s),
				Init: core.InitConfig{Workers: cfg.Workers},
			}); err == nil {
				arbS = append(arbS, float64(res.Tree.NumSlots()))
			}
		}
		// Centralized baseline: MST scheduled first-fit under mean power.
		edges := geom.MST(in.Points())
		links := make([]sinr.Link, len(edges))
		for i, ed := range edges {
			links[i] = sinr.Link{From: ed.U, To: ed.V}
		}
		pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
		ffSlots, bad := schedule.FirstFit(in, links, pa, schedule.ByLengthDesc)
		mst = append(mst, float64(len(ffSlots)+len(bad)))

		u := stats.Summarize(uni).Mean
		mf := stats.Summarize(meanFF).Mean
		mt := stats.Summarize(meanS).Mean
		a := stats.Summarize(arbS).Mean
		r.Table.AddRow(fmt.Sprintf("2^%d", e), fmt.Sprintf("%.1f", u),
			fmt.Sprintf("%.1f", mf), fmt.Sprintf("%.1f", mt), fmt.Sprintf("%.1f", a),
			fmt.Sprintf("%.1f", stats.Summarize(mst).Mean))
		uniCol = append(uniCol, u)
		meanFFCol = append(meanFFCol, mf)
		meanTVCCol = append(meanTVCCol, mt)
		arbCol = append(arbCol, a)
	}
	last := len(uniCol) - 1
	r.Notes = append(r.Notes,
		fmt.Sprintf("same-tree gap at top Δ: uniform %.1f vs mean %.1f", uniCol[last], meanFFCol[last]),
		fmt.Sprintf("arbitrary TVC across the Δ sweep: %.1f → %.1f (flat = Δ-independent)", arbCol[0], arbCol[last]))
	flat := arbCol[last] <= arbCol[0]*1.6+2 && meanTVCCol[last] <= meanTVCCol[0]*1.6+2
	r.Pass = meanFFCol[last] <= uniCol[last] && flat
	return r
}

// E11Latency verifies the bi-tree latency claims: aggregation and broadcast
// complete within the schedule length, and pairwise latency within twice it.
func E11Latency(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E11",
		Title: "Bi-tree latency (converge-cast / broadcast / pairwise)",
		Claim: "Definition 1 / Theorem 4: aggregation, broadcast, and any pairwise communication complete in O(log n) slots",
		Table: stats.NewTable("n", "schedule", "agg", "bcast", "max pair (sampled)"),
	}
	pass := true
	for _, n := range cfg.Sizes {
		var sch, agg, bc, pairMax []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(1700*n+s), n)
			res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary,
				Seed:    int64(s),
				Init:    core.InitConfig{Workers: cfg.Workers},
			})
			if err != nil {
				pass = false
				continue
			}
			bt := res.Tree
			k := bt.NumSlots()
			sch = append(sch, float64(k))
			a, err := bt.AggregationLatency()
			if err != nil {
				pass = false
				continue
			}
			b, err := bt.BroadcastLatency()
			if err != nil {
				pass = false
				continue
			}
			agg = append(agg, float64(a))
			bc = append(bc, float64(b))
			if a > k || b > k {
				pass = false
			}
			rng := rand.New(rand.NewSource(int64(s)))
			worst := 0
			for trial := 0; trial < 5; trial++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if lat, err := bt.PairLatency(src, dst); err == nil && lat > worst {
					worst = lat
				} else if err != nil {
					pass = false
				}
			}
			pairMax = append(pairMax, float64(worst))
			if worst > 2*k {
				pass = false
			}
		}
		r.Table.AddRow(n, fmt.Sprintf("%.1f", stats.Summarize(sch).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(agg).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(bc).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(pairMax).Mean))
	}
	r.Pass = pass
	return r
}

// E12CapacityRatio compares Distr-Cap against the centralized Kesselheim
// selection on identical candidate sets (Theorem 20's Ω(1) fraction).
func E12CapacityRatio(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E12",
		Title: "Distributed vs centralized capacity selection",
		Claim: "Theorem 20: E|T′| = Ω(|OPT|) — the distributed selection is a constant fraction of the centralized one",
		Table: stats.NewTable("n", "candidates", "central |T′|", "distr |T′| (4 repeats)", "ratio"),
	}
	var ratios []float64
	for _, n := range cfg.Sizes {
		var cand, cent, dist []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(1900*n+s), n)
			ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			sub := core.LowDegreeSubset(ires.Tree, 0)
			links := make([]sinr.Link, len(sub))
			for i, tl := range sub {
				links[i] = tl.L
			}
			c := core.CentralCapacity(in, links, 0)
			d := core.DistrCap(in, links, core.DistrCapConfig{Seed: int64(s), Repeats: 4})
			cand = append(cand, float64(len(links)))
			cent = append(cent, float64(len(c)))
			dist = append(dist, float64(len(d.Selected)))
			// Largeness is in expectation; ensure feasibility always.
			if _, _, err := power.Solve(in, d.Selected, power.Options{Slack: 1.01}); err != nil {
				r.Notes = append(r.Notes, "ERROR: distr selection not power-solvable")
			}
		}
		mc := stats.Summarize(cent).Mean
		md := stats.Summarize(dist).Mean
		ratio := 0.0
		if mc > 0 {
			ratio = md / mc
		}
		ratios = append(ratios, ratio)
		r.Table.AddRow(n, fmt.Sprintf("%.0f", stats.Summarize(cand).Mean),
			fmt.Sprintf("%.1f", mc), fmt.Sprintf("%.1f", md), ratio)
	}
	rs := stats.Summarize(ratios)
	r.Notes = append(r.Notes,
		fmt.Sprintf("distributed/centralized ratio range [%.2f, %.2f] (want bounded below)", rs.Min, rs.Max))
	r.Pass = rs.Min > 0.05
	return r
}

// makeTree is a test hook: it builds a bi-tree via Init for callers outside
// core (kept internal to the module).
func makeTree(ctx context.Context, in *sinr.Instance, seed int64, workers int) (*tree.BiTree, error) {
	res, err := core.Init(ctx, in, core.InitConfig{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}
