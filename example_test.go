package sinrconn_test

import (
	"context"
	"fmt"
	"log"

	"sinrconn"
)

// Open a session for a small fixed deployment, build a bi-tree, and verify
// every property the theorems promise. Results are deterministic for a
// fixed seed.
func ExampleNetwork_Run() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 1},
		{X: 1, Y: 3}, {X: 3, Y: 4}, {X: 6, Y: 3},
	}
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(context.Background(), sinrconn.PipelineInit)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", res.Tree.NumNodes)
	fmt.Println("links:", len(res.Tree.Up))
	fmt.Println("spanning:", res.Tree.NumNodes == len(res.Tree.Up)+1)
	// Output:
	// nodes: 6
	// links: 5
	// spanning: true
}

// Sweep one deployment across every pipeline and several seeds in a single
// batch call; the session's validated geometry, gain table, and worker
// pool are shared by all specs.
func ExampleNetwork_RunMatrix() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 2}, {X: 4, Y: 1},
	}
	nw, err := sinrconn.Open(pts)
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()
	specs := sinrconn.Specs(
		[]sinrconn.Pipeline{sinrconn.PipelineInit, sinrconn.PipelineTVCArbitrary},
		[]int64{1, 2, 3},
	)
	results, err := nw.RunMatrix(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}
	spanning := 0
	for _, r := range results {
		if r.Tree.NumNodes == len(pts) {
			spanning++
		}
	}
	fmt.Printf("%d/%d specs spanned all nodes\n", spanning, len(specs))
	// Output:
	// 6/6 specs spanned all nodes
}

// Aggregate a sum over the whole network in one physical converge-cast
// epoch.
func ExampleNetwork_Aggregate() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 2},
	}
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(context.Background(), sinrconn.PipelineInit)
	if err != nil {
		log.Fatal(err)
	}
	out, err := nw.Aggregate(context.Background(), res, []int64{10, 20, 30, 40}, sinrconn.SumAgg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root collected:", out.Value)
	// Output:
	// root collected: 100
}

// Disseminate a value from the root to every node.
func ExampleNetwork_Broadcast() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}, {X: 3, Y: 3}, {X: 6, Y: 1},
	}
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(context.Background(), sinrconn.PipelineInit)
	if err != nil {
		log.Fatal(err)
	}
	out, err := nw.Broadcast(context.Background(), res, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached:", out.Reached, "of", res.Tree.NumNodes)
	// Output:
	// reached: 5 of 5
}

// Attach newly awakened nodes to a live network. The grown result is bound
// to a derived session over the enlarged point set.
func ExampleNetwork_Join() {
	pts := []sinrconn.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(context.Background(), sinrconn.PipelineInit)
	if err != nil {
		log.Fatal(err)
	}
	grown, err := nw.Join(context.Background(), res,
		[]sinrconn.Point{{X: 6, Y: 0}, {X: 8, Y: 1}}, sinrconn.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("now spanning:", grown.Tree.NumNodes)
	// Output:
	// now spanning: 5
}
