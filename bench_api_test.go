package sinrconn_test

// BenchmarkNetworkReuse quantifies the session API's amortization: the
// deprecated wrapper path re-pays geometry validation, Δ computation, and
// the O(n²) gain table on every call, while an open Network pays them once.
// Three measurements per size:
//
//	rebuild     — BuildInitialBiTree per op (validation + instance +
//	              construction, the pre-session cost model)
//	reuse-fresh — Run with a fresh seed per op on a warm handle
//	              (construction only; the instance is amortized)
//	reuse-memo  — Run repeating one spec on a warm handle (the "second
//	              run" of an identical query: served from the memo, no
//	              construction at all)
//
// BENCH_api.json records the headline numbers.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sinrconn"

	"sinrconn/internal/workload"
)

func apiBenchPoints(n int) []sinrconn.Point {
	rng := rand.New(rand.NewSource(int64(n) * 7))
	g := workload.UniformDensity(rng, n, 0.15)
	pts := make([]sinrconn.Point, len(g))
	for i, p := range g {
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
	}
	return pts
}

func BenchmarkNetworkReuse(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{256, 1024, 4096} {
		pts := apiBenchPoints(n)
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reuse-fresh/n=%d", n), func(b *testing.B) {
			nw, err := sinrconn.Open(pts, sinrconn.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Close()
			if _, err := nw.Run(ctx, sinrconn.PipelineInit); err != nil {
				b.Fatal(err) // warm the instance outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Run(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(int64(i)+2)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reuse-memo/n=%d", n), func(b *testing.B) {
			nw, err := sinrconn.Open(pts, sinrconn.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Close()
			if _, err := nw.Run(ctx, sinrconn.PipelineInit); err != nil {
				b.Fatal(err) // first run pays the construction
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Run(ctx, sinrconn.PipelineInit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
