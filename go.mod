module sinrconn

go 1.24.0
