package sinr

import "fmt"

// Assignment maps each link to the transmission power its sender uses. The
// paper studies oblivious assignments (power depends only on link length) —
// uniform U, linear L (P = ℓ^α), and mean M (P = ℓ^(α/2)) — as well as
// arbitrary per-link assignments produced by power-control algorithms.
type Assignment interface {
	// Power returns the sender power for link l in instance in. It must be
	// strictly positive for any link the caller intends to schedule.
	Power(in *Instance, l Link) float64
	// Name identifies the assignment in logs and experiment tables.
	Name() string
}

// Uniform assigns the same fixed power to every link (the paper's U). It is
// the only assignment available to nodes with no prior knowledge of the
// instance.
type Uniform struct {
	P float64
}

var _ Assignment = Uniform{}

// Power implements Assignment.
func (u Uniform) Power(*Instance, Link) float64 { return u.P }

// Name implements Assignment.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%.3g)", u.P) }

// UniformFor returns the uniform assignment with just enough power for
// links up to maxLen to comfortably overcome noise (c(u,v) ≤ 2β).
func UniformFor(p Params, maxLen float64) Uniform {
	return Uniform{P: p.SafePower(maxLen)}
}

// Linear assigns P = Scale·ℓ^α (the paper's L, up to scaling). Under linear
// power every link receives its signal at the same strength Scale,
// independent of length.
type Linear struct {
	Scale float64
}

var _ Assignment = Linear{}

// Power implements Assignment.
func (a Linear) Power(in *Instance, l Link) float64 {
	return a.Scale * in.LengthAlpha(l)
}

// Name implements Assignment.
func (a Linear) Name() string { return "linear" }

// NoiseSafeLinear returns the linear assignment with Scale = 2βN, which
// gives every link c(u,v) ≤ 2β regardless of length.
func NoiseSafeLinear(p Params) Linear {
	return Linear{Scale: 2 * p.Beta * p.Noise}
}

// Mean assigns P = Scale·ℓ^(α/2) (the paper's M). Mean power is the
// oblivious scheme with the best worst-case behaviour: its cost relative to
// arbitrary power is Υ = O(log log Δ + log n).
type Mean struct {
	Scale float64
}

var _ Assignment = Mean{}

// Power implements Assignment.
func (a Mean) Power(in *Instance, l Link) float64 {
	// α/2 hits PowAlphaSq's half-integer path for integer α: one sqrt, no Pow.
	return a.Scale * PowAlphaSq(in.DistSq(l.From, l.To), in.params.Alpha/2)
}

// Name implements Assignment.
func (a Mean) Name() string { return "mean" }

// NoiseSafeMean returns the mean assignment scaled so that even the longest
// possible link (length maxLen) comfortably overcomes noise:
// Scale = 2βN·maxLen^(α/2). Scaling all powers by a common factor leaves
// relative interference between mean-power links unchanged, so this
// preserves the paper's analysis while making Eqn 1 satisfiable under
// ambient noise.
func NoiseSafeMean(p Params, maxLen float64) Mean {
	if maxLen < 1 {
		maxLen = 1
	}
	return Mean{Scale: 2 * p.Beta * p.Noise * PowAlpha(maxLen, p.Alpha/2)}
}

// PerLink is an arbitrary per-link power table, the output of power-control
// algorithms (Section 8.2.3). Links not in the table fall back to Fallback
// if non-nil.
type PerLink struct {
	Table    map[Link]float64
	Fallback Assignment
}

var _ Assignment = PerLink{}

// Power implements Assignment.
func (a PerLink) Power(in *Instance, l Link) float64 {
	if p, ok := a.Table[l]; ok {
		return p
	}
	if a.Fallback != nil {
		return a.Fallback.Power(in, l)
	}
	return 0
}

// Name implements Assignment.
func (a PerLink) Name() string { return "arbitrary" }

// NewPerLink creates an empty per-link table with the given fallback.
func NewPerLink(fallback Assignment) PerLink {
	return PerLink{Table: make(map[Link]float64), Fallback: fallback}
}
