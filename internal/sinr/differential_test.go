package sinr_test

// The differential suite: every kernel-backed quantity pinned against
// internal/oracle (the naive math.Hypot + math.Pow reference) to within
// diffRelTol = 1e-12 relative, across the full scenario matrix
// (internal/workload.Matrix) and α ∈ {2, 2.5, 3, 4} — even integer fast
// path, fractional fallback, odd integer fast path, and the free-space
// boundary. Classification: Type 1 (deterministic; one failure = bug).
//
// This lives in package sinr_test (not sinr) because the oracle imports
// sinr for its data types; the external test package breaks the cycle.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

const diffRelTol = 1e-12

// diffAlphas spans the kernel's arithmetic regimes: α = 2 (even-integer
// ipow, free-space boundary), 2.5 (half-integer sqrt path), 3 (odd-integer
// default), 4 (even integer).
var diffAlphas = []float64{2, 2.5, 3, 4}

func diffClose(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= diffRelTol*scale
}

// diffInstance builds the (points, Instance) pair for one matrix cell.
func diffInstance(t *testing.T, spec workload.Spec, alpha float64, seed int64, n int) ([]geom.Point, *sinr.Instance) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := spec.Gen(rng, n)
	p := sinr.DefaultParams()
	p.Alpha = alpha
	return pts, sinr.MustInstance(pts, p)
}

// TestDifferentialKernelVsOracle sweeps generator × α and compares C,
// Affectance, SetAffectance, SINR, MeasuredAffectance, Gain, and DistAlpha
// against the oracle on random links, senders, and powers.
func TestDifferentialKernelVsOracle(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					n := 24 + int(seed)*4
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 997))

					txs := make([]sinr.Tx, 0, n/3)
					for len(txs) < n/3 {
						pw := p.SafePower(1+rng.Float64()*8) * (1 + rng.Float64())
						txs = append(txs, sinr.Tx{Sender: rng.Intn(n), Power: pw})
					}

					for trial := 0; trial < 30; trial++ {
						l := sinr.Link{From: rng.Intn(n), To: rng.Intn(n)}
						if l.From == l.To {
							continue
						}
						pu := p.SafePower(in.Length(l)) * (1 + rng.Float64())
						w := rng.Intn(n)
						pw := p.SafePower(4) * (1 + rng.Float64())

						if got, want := in.C(in.Length(l), pu), oracle.C(p, oracle.Dist(pts, l.From, l.To), pu); !diffClose(got, want) {
							t.Fatalf("seed %d C(%v): kernel %v oracle %v", seed, l, got, want)
						}
						if got, want := in.Affectance(w, pw, l, pu), oracle.Affectance(pts, p, w, pw, l, pu); !diffClose(got, want) {
							t.Fatalf("seed %d Affectance(%d on %v): kernel %v oracle %v", seed, w, l, got, want)
						}
						if got, want := in.SetAffectance(txs, l, pu), oracle.SetAffectance(pts, p, txs, l, pu); !diffClose(got, want) {
							t.Fatalf("seed %d SetAffectance(%v): kernel %v oracle %v", seed, l, got, want)
						}
						if got, want := in.SINR(txs, l), oracle.SINR(pts, p, txs, l); !diffClose(got, want) {
							t.Fatalf("seed %d SINR(%v): kernel %v oracle %v", seed, l, got, want)
						}
						if got, want := in.MeasuredAffectance(txs, l, pu), oracle.MeasuredAffectance(pts, p, txs, l, pu); !diffClose(got, want) {
							t.Fatalf("seed %d MeasuredAffectance(%v): kernel %v oracle %v", seed, l, got, want)
						}
						if got, want := in.DistAlpha(l.From, l.To), oracle.PathLoss(oracle.Dist(pts, l.From, l.To), alpha); !diffClose(got, want) {
							t.Fatalf("seed %d DistAlpha(%v): kernel %v oracle %v", seed, l, got, want)
						}
						if got, want := in.Gain(w, l.To), oracle.Gain(pts, alpha, w, l.To); !diffClose(got, want) {
							t.Fatalf("seed %d Gain(%d,%d): kernel %v oracle %v", seed, w, l.To, got, want)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialFeasibility pins the feasibility *decision* — the bit
// every scheduler branches on — between kernel and oracle on random link
// sets, including sets engineered to be infeasible. Both implementations
// carry the same 1e-9 β slack, and the 1e-12 value agreement keeps every
// decision far from the cut for these instances, so equality is exact.
func TestDifferentialFeasibility(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					n := 24
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 131))

					for trial := 0; trial < 12; trial++ {
						links, powers := randomLinkSet(rng, in, 1+rng.Intn(6))
						kOK, kErr := in.SINRFeasible(links, powers)
						oOK, oErr := oracle.SINRFeasible(pts, p, links, powers)
						if (kErr == nil) != (oErr == nil) {
							t.Fatalf("seed %d error mismatch: kernel %v oracle %v", seed, kErr, oErr)
						}
						if kOK != oOK {
							t.Fatalf("seed %d feasibility mismatch on %v: kernel %v oracle %v", seed, links, kOK, oOK)
						}
						// Affectance formulation agrees with the oracle too.
						pl := sinr.NewPerLink(nil)
						for i, l := range links {
							pl.Table[l] = powers[i]
						}
						aOK := in.Feasible(links, pl)
						oaOK, _ := oracle.Feasible(pts, p, links, powers)
						if aOK != oaOK {
							t.Fatalf("seed %d affectance-feasibility mismatch on %v: kernel %v oracle %v", seed, links, aOK, oaOK)
						}
					}
				}
			})
		}
	}
}

// randomLinkSet draws m links with distinct senders and powers between
// SafePower (comfortably feasible alone) and a fraction of MinPower
// (infeasible alone), so both feasible and infeasible sets appear.
func randomLinkSet(rng *rand.Rand, in *sinr.Instance, m int) ([]sinr.Link, []float64) {
	p := in.Params()
	n := in.Len()
	links := make([]sinr.Link, 0, m)
	powers := make([]float64, 0, m)
	used := map[int]bool{}
	for len(links) < m {
		l := sinr.Link{From: rng.Intn(n), To: rng.Intn(n)}
		if l.From == l.To || used[l.From] {
			continue
		}
		used[l.From] = true
		pw := p.SafePower(in.Length(l)) * (0.25 + 2*rng.Float64())
		links = append(links, l)
		powers = append(powers, pw)
	}
	return links, powers
}

func floatName(f float64) string {
	switch f {
	case 2:
		return "alpha2"
	case 2.5:
		return "alpha2.5"
	case 3:
		return "alpha3"
	case 4:
		return "alpha4"
	}
	return "alpha"
}
