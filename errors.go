package sinrconn

// The typed error hierarchy for robustness-aware callers. All protocol-level
// failures are rooted at ErrNotConverged so one errors.Is test routes
// "retry with a fresh seed" decisions; the churn driver adds two refinements
// of its own (ErrDamped, ErrRetryExhausted) that stay in the same tree.

import (
	"fmt"

	"sinrconn/internal/core"
)

// ErrNotConverged reports that a randomized construction protocol (Init,
// Join, the re-attachment phase of Repair/RepairLinks) exhausted its round
// budget without connecting every participant. It is the retryable error
// class: the protocols are Las Vegas, so re-running with a fresh seed on the
// SAME instance succeeds with high probability — whereas validator or
// geometry errors are deterministic and retrying cannot help. Test with
// errors.Is; the value is shared with the internal construction layer, so
// errors returned by any Network method match it directly.
var ErrNotConverged error = core.ErrNotConverged

// ErrDamped reports that an operation was refused because its target region
// is flap-damped: the region accumulated too many failures inside the
// damping window and is quarantined until the cooldown passes (see
// WithFlapDamping). Joins into a damped region are not attempted — the
// region's recent history says the work would likely be wasted — which is
// what bounds repair effort on a permanently failing region. ErrDamped is
// not retryable-by-reseed and deliberately does NOT wrap ErrNotConverged.
var ErrDamped = fmt.Errorf("sinrconn: region is flap-damped")

// ErrRetryExhausted reports that the churn driver's bounded retry ladder —
// reseeded protocol re-runs with round-budget backoff, then graceful
// degradation to a full rebuild — still ended in non-convergence. It wraps
// ErrNotConverged, so errors.Is(err, ErrNotConverged) also matches; callers
// that see it have already had every automatic recovery spent on their
// behalf.
var ErrRetryExhausted = fmt.Errorf("sinrconn: retries exhausted: %w", ErrNotConverged)
