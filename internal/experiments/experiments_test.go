package experiments

import (
	"strings"
	"testing"
)

// Each experiment runs in Quick mode and must (a) produce a table with rows
// and (b) pass its own shape check. The shape checks are the substantive
// assertions — they encode the paper's claims.

func runAndCheck(t *testing.T, rep Report, wantRows int) {
	t.Helper()
	if rep.Table.NumRows() < wantRows {
		t.Fatalf("%s: %d rows, want ≥ %d", rep.ID, rep.Table.NumRows(), wantRows)
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "ERROR") {
			t.Fatalf("%s: %s", rep.ID, n)
		}
	}
	if !rep.Pass {
		t.Errorf("%s shape check failed:\n%s", rep.ID, rep.Render())
	}
	out := rep.Render()
	if !strings.Contains(out, rep.ID) || !strings.Contains(out, "Claim:") {
		t.Errorf("%s: malformed render", rep.ID)
	}
}

func TestE1InitSlots(t *testing.T) {
	runAndCheck(t, E1InitSlots(t.Context(), Quick()), 3)
}

func TestE2BiTreeValidity(t *testing.T) {
	runAndCheck(t, E2BiTreeValidity(t.Context(), Quick()), 3)
}

func TestE3DegreeTail(t *testing.T) {
	runAndCheck(t, E3DegreeTail(t.Context(), Quick()), 2)
}

func TestE4Sparsity(t *testing.T) {
	runAndCheck(t, E4Sparsity(t.Context(), Quick()), 2)
}

func TestE5LowDegreeFilter(t *testing.T) {
	runAndCheck(t, E5LowDegreeFilter(t.Context(), Quick()), 2)
}

func TestE6MeanReschedule(t *testing.T) {
	runAndCheck(t, E6MeanReschedule(t.Context(), Quick()), 2)
}

func TestE7Iterations(t *testing.T) {
	runAndCheck(t, E7Iterations(t.Context(), Quick()), 2)
}

func TestE8ArbitraryPower(t *testing.T) {
	runAndCheck(t, E8ArbitraryPower(t.Context(), Quick()), 2)
}

func TestE9MeanPower(t *testing.T) {
	runAndCheck(t, E9MeanPower(t.Context(), Quick()), 2)
}

func TestE10Crossover(t *testing.T) {
	runAndCheck(t, E10Crossover(t.Context(), Quick()), 2)
}

func TestE11Latency(t *testing.T) {
	runAndCheck(t, E11Latency(t.Context(), Quick()), 2)
}

func TestE12CapacityRatio(t *testing.T) {
	runAndCheck(t, E12CapacityRatio(t.Context(), Quick()), 2)
}

func TestQuickConfig(t *testing.T) {
	q := Quick()
	if q.Seeds < 1 || len(q.Sizes) == 0 {
		t.Errorf("Quick = %+v", q)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.Seeds != 3 || len(c.Sizes) != 4 || len(c.DeltaExps) != 4 || c.ChainN != 48 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestMakeTreeHelper(t *testing.T) {
	in := uniformInst(1, 16)
	bt, err := makeTree(t.Context(), in, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Up) != 15 {
		t.Errorf("links = %d", len(bt.Up))
	}
}
