package workload

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

func checkMinDist(t *testing.T, pts []geom.Point, label string) {
	t.Helper()
	if d := geom.MinDist(pts); len(pts) > 1 && d < 1-1e-9 {
		t.Errorf("%s: min distance %v < 1", label, d)
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 10, 100, 300} {
		pts := Uniform(rng, n, 30)
		if len(pts) != n {
			t.Fatalf("n=%d: got %d points", n, len(pts))
		}
		checkMinDist(t, pts, "uniform")
	}
	if Uniform(rng, 0, 10) != nil {
		t.Error("Uniform(0) != nil")
	}
}

func TestUniformGrowsTinySpan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// span 1 cannot hold 50 points at min distance 1; generator must grow it.
	pts := Uniform(rng, 50, 1)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "uniform tiny span")
}

func TestUniformDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := UniformDensity(rng, 100, 0.1)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "uniform density")
	// Degenerate densities are clamped, not fatal.
	pts = UniformDensity(rng, 20, -1)
	if len(pts) != 20 {
		t.Error("negative density not clamped")
	}
	pts = UniformDensity(rng, 20, 100)
	if len(pts) != 20 {
		t.Error("huge density not clamped")
	}
}

func TestClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := Clusters(rng, 120, 4, 5, 80)
	if len(pts) != 120 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "clusters")
	if Clusters(rng, 0, 3, 5, 80) != nil {
		t.Error("Clusters(0) != nil")
	}
	// Degenerate k handled.
	pts = Clusters(rng, 30, 0, 5, 80)
	if len(pts) != 30 {
		t.Error("k=0 not clamped")
	}
}

func TestClustersImpossibleDensityRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Tiny radius for many points: generator must widen until it fits.
	pts := Clusters(rng, 100, 2, 2, 40)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "dense clusters")
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(3, 4, 2)
	if len(pts) != 12 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "grid")
	if d := geom.MinDist(pts); math.Abs(d-2) > 1e-12 {
		t.Errorf("grid spacing = %v", d)
	}
	pts = GridPoints(2, 2, 0.5) // clamped to 1
	if d := geom.MinDist(pts); d < 1-1e-12 {
		t.Errorf("grid spacing not clamped: %v", d)
	}
}

func TestExponentialChain(t *testing.T) {
	pts := ExponentialChain(6, 2)
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "chain")
	// Gaps are 1, 2, 4, 8, 16; Δ = 31.
	if d := geom.Delta(pts); math.Abs(d-31) > 1e-9 {
		t.Errorf("Δ = %v, want 31", d)
	}
	if ExponentialChain(0, 2) != nil {
		t.Error("ExponentialChain(0) != nil")
	}
	// base ≤ 1 replaced.
	pts = ExponentialChain(4, 0.5)
	checkMinDist(t, pts, "chain bad base")
}

func TestChainForDelta(t *testing.T) {
	for _, target := range []float64{64, 1024, 1 << 20} {
		pts := ChainForDelta(32, target)
		checkMinDist(t, pts, "chainForDelta")
		got := geom.Delta(pts)
		if got < target/2 || got > target*2 {
			t.Errorf("target Δ %v: got %v", target, got)
		}
	}
	// Targets below the n-1 floor are clamped, not fatal.
	pts := ChainForDelta(8, 1)
	checkMinDist(t, pts, "chainForDelta clamp")
	if got := geom.Delta(pts); got < 7-1e-9 || got > 14 {
		t.Errorf("clamped Δ = %v, want ≈ 7", got)
	}
}

func TestRing(t *testing.T) {
	pts := Ring(12, 1.5)
	if len(pts) != 12 {
		t.Fatalf("got %d points", len(pts))
	}
	if d := geom.MinDist(pts); math.Abs(d-1.5) > 1e-9 {
		t.Errorf("ring neighbor gap = %v, want 1.5", d)
	}
	if len(Ring(1, 1)) != 1 {
		t.Error("Ring(1) wrong size")
	}
	if Ring(0, 1) != nil {
		t.Error("Ring(0) != nil")
	}
}

func TestTwoScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := TwoScale(rng, 60, 50)
	if len(pts) != 60 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "twoscale")
	if TwoScale(rng, 0, 50) != nil {
		t.Error("TwoScale(0) != nil")
	}
}

func TestStandardSuite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range Standard() {
		pts := spec.Gen(rng, 48)
		if len(pts) != 48 {
			t.Errorf("%s: got %d points", spec.Name, len(pts))
		}
		checkMinDist(t, pts, spec.Name)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Uniform(rand.New(rand.NewSource(11)), 40, 30)
	b := Uniform(rand.New(rand.NewSource(11)), 40, 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Uniform not deterministic for fixed seed")
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(ExponentialChain(4, 2))
	if s == "" {
		t.Error("empty description")
	}
}

// TestJitteredGrid pins the O(n) bench generator's contract: exactly n
// points, minimum pairwise distance ≥ 1, and jitter clamped so the
// normalization survives aggressive parameters.
func TestJitteredGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		n       int
		spacing float64
		jitter  float64
	}{
		{1, 1, 0}, {17, 2, 0.4}, {100, 3, 0.9}, {257, 1, 5}, {1024, 4, 1.5},
	} {
		pts := JitteredGrid(rng, tc.n, tc.spacing, tc.jitter)
		if len(pts) != tc.n {
			t.Fatalf("JitteredGrid(%d, %v, %v): got %d points", tc.n, tc.spacing, tc.jitter, len(pts))
		}
		if tc.n > 1 {
			if md := geom.MinDist(pts); md < 1-1e-9 {
				t.Fatalf("JitteredGrid(%d, %v, %v): min distance %v < 1", tc.n, tc.spacing, tc.jitter, md)
			}
		}
	}
}
