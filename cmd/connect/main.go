// Command connect builds a connectivity structure for a generated wireless
// instance and prints the tree, its schedule, and the construction metrics.
//
// Usage:
//
//	connect -n 64 -workload uniform -pipeline arbitrary -seed 1 [-v]
//
// Pipelines: init (Section 6), reschedule (Section 7), mean (Section 8,
// mean power), arbitrary (Section 8, power control).
// Workloads: every generator of the scenario matrix (workload.Matrix) —
// uniform, clusters, grid, chain, gaussians, annulus, powerlaw, city.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"sinrconn"

	"sinrconn/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	n := fs.Int("n", 64, "number of nodes")
	wl := fs.String("workload", "uniform", "workload: uniform|clusters|grid|chain|gaussians|annulus|powerlaw|city")
	pipeline := fs.String("pipeline", "arbitrary", "pipeline: init|reschedule|mean|arbitrary")
	seed := fs.Int64("seed", 1, "random seed")
	drop := fs.Float64("drop", 0, "reception drop probability in [0,1)")
	verbose := fs.Bool("v", false, "print every scheduled link")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pts, err := generate(*wl, *n, *seed)
	if err != nil {
		return err
	}
	opt := sinrconn.Options{Seed: *seed, DropProb: *drop, AutoNormalize: true}

	var res *sinrconn.Result
	switch *pipeline {
	case "init":
		res, err = sinrconn.BuildInitialBiTree(pts, opt)
	case "reschedule":
		res, err = sinrconn.RescheduleMeanPower(pts, opt)
	case "mean":
		res, err = sinrconn.BuildBiTreeMeanPower(pts, opt)
	case "arbitrary":
		res, err = sinrconn.BuildBiTreeArbitraryPower(pts, opt)
	default:
		return fmt.Errorf("unknown pipeline %q", *pipeline)
	}
	if err != nil {
		return err
	}

	m := res.Metrics
	fmt.Fprintf(out, "workload=%s n=%d Δ=%.1f Υ=%.1f pipeline=%s seed=%d\n",
		*wl, *n, m.Delta, m.Upsilon, *pipeline, *seed)
	fmt.Fprintf(out, "root=%d  links=%d  schedule=%d slots  construction=%d slots\n",
		res.Tree.Root, len(res.Tree.Up), m.ScheduleLength, m.SlotsUsed)
	if m.AggregationLatency > 0 {
		fmt.Fprintf(out, "aggregation latency=%d  broadcast latency=%d\n",
			m.AggregationLatency, m.BroadcastLatency)
	}
	fmt.Fprintf(out, "max degree=%d  depth=%d\n", res.Tree.MaxDegree(), res.Tree.Depth())
	if *pipeline != "reschedule" {
		if err := res.Tree.Verify(); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintln(out, "verification: tree + ordering + per-slot feasibility OK")
	}
	if *verbose {
		links := append([]sinrconn.ScheduledLink(nil), res.Tree.Up...)
		sort.Slice(links, func(i, j int) bool {
			if links[i].Slot != links[j].Slot {
				return links[i].Slot < links[j].Slot
			}
			return links[i].From < links[j].From
		})
		for _, l := range links {
			fmt.Fprintf(out, "  slot %3d: %4d -> %-4d power %.3g\n", l.Slot, l.From, l.To, l.Power)
		}
	}
	return nil
}

func generate(name string, n int, seed int64) ([]sinrconn.Point, error) {
	for _, spec := range workload.Matrix() {
		if spec.Name != name {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		g := spec.Gen(rng, n)
		pts := make([]sinrconn.Point, len(g))
		for i, p := range g {
			pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		}
		return pts, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
