package oracle

import (
	"math"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// The oracle is the root of trust for the differential suites, so its own
// tests are hand computations on instances small enough to check with pen
// and paper, plus agreement with internal/tree's validators on trees whose
// verdict is obvious by construction.

func handParams() sinr.Params {
	return sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1, Epsilon: 0.1}
}

// Three collinear points at x = 0, 1, 3: d(0,1)=1, d(1,2)=2, d(0,2)=3.
func handPoints() []geom.Point {
	return []geom.Point{{X: 0}, {X: 1}, {X: 3}}
}

func TestHandComputedSINR(t *testing.T) {
	pts, p := handPoints(), handParams()
	txs := []sinr.Tx{{Sender: 0, Power: 10}, {Sender: 2, Power: 8}}
	// Link 0→1: signal 10/1³ = 10, interference 8/2³ = 1, SINR = 10/(1+1) = 5.
	if got := SINR(pts, p, txs, sinr.Link{From: 0, To: 1}); math.Abs(got-5) > 1e-15 {
		t.Errorf("SINR(0→1) = %v, want 5", got)
	}
	// Link 2→1: signal 1, interference 10, SINR = 1/11.
	if got, want := SINR(pts, p, txs, sinr.Link{From: 2, To: 1}), 1.0/11; math.Abs(got-want) > 1e-15 {
		t.Errorf("SINR(2→1) = %v, want %v", got, want)
	}
	// Sender absent from txs → 0.
	if got := SINR(pts, p, txs, sinr.Link{From: 1, To: 2}); got != 0 {
		t.Errorf("SINR with absent sender = %v, want 0", got)
	}
}

func TestHandComputedC(t *testing.T) {
	p := handParams()
	// c = β/(1 − βN·1³/10) = 1.5/0.85.
	if got, want := C(p, 1, 10), 1.5/0.85; math.Abs(got-want) > 1e-15 {
		t.Errorf("C = %v, want %v", got, want)
	}
	// P ≤ βN·d³ → +Inf.
	if got := C(p, 2, 12); !math.IsInf(got, 1) {
		t.Errorf("C under noise floor = %v, want +Inf", got)
	}
}

func TestHandComputedAffectance(t *testing.T) {
	pts, p := handPoints(), handParams()
	l := sinr.Link{From: 0, To: 1}
	// a_2(0→1) = c·(8/10)·(1/2)³ = (1.5/0.85)·0.8·0.125 = 1.5/0.85·0.1.
	if got, want := Affectance(pts, p, 2, 8, l, 10), 1.5/0.85*0.1; math.Abs(got-want) > 1e-15 {
		t.Errorf("Affectance = %v, want %v", got, want)
	}
	// Own sender contributes zero.
	if got := Affectance(pts, p, 0, 8, l, 10); got != 0 {
		t.Errorf("own-sender affectance = %v, want 0", got)
	}
	// Co-located interferer is capped at 1+ε.
	if got := Affectance(pts, p, 1, 8, l, 10); got != 1.1 {
		t.Errorf("co-located affectance = %v, want 1.1", got)
	}
	// The cap also binds huge affectances.
	if got := Affectance(pts, p, 2, 1e9, l, 10); got != 1.1 {
		t.Errorf("capped affectance = %v, want 1.1", got)
	}
	// SetAffectance is the plain sum.
	txs := []sinr.Tx{{Sender: 0, Power: 10}, {Sender: 2, Power: 8}}
	if got, want := SetAffectance(pts, p, txs, l, 10), 1.5/0.85*0.1; math.Abs(got-want) > 1e-15 {
		t.Errorf("SetAffectance = %v, want %v", got, want)
	}
}

func TestHandComputedMeasuredAffectance(t *testing.T) {
	pts, p := handPoints(), handParams()
	l := sinr.Link{From: 0, To: 1}
	txs := []sinr.Tx{{Sender: 0, Power: 10}, {Sender: 2, Power: 8}}
	// c·I/S = (1.5/0.85)·1/10.
	if got, want := MeasuredAffectance(pts, p, txs, l, 10), 1.5/0.85*0.1; math.Abs(got-want) > 1e-15 {
		t.Errorf("MeasuredAffectance = %v, want %v", got, want)
	}
	// Link under the noise floor measures +Inf.
	if got := MeasuredAffectance(pts, p, txs, sinr.Link{From: 0, To: 2}, 1); !math.IsInf(got, 1) {
		t.Errorf("MeasuredAffectance under noise floor = %v, want +Inf", got)
	}
}

func TestHandComputedFeasibility(t *testing.T) {
	pts, p := handPoints(), handParams()
	// 0→1 alone at power 10: SINR vs noise = 10 ≥ 1.5.
	ok, err := SINRFeasible(pts, p, []sinr.Link{{From: 0, To: 1}}, []float64{10})
	if err != nil || !ok {
		t.Errorf("single link: ok=%v err=%v, want feasible", ok, err)
	}
	// Adding 2→1 (SINR 1/11) breaks the set.
	ok, err = SINRFeasible(pts, p,
		[]sinr.Link{{From: 0, To: 1}, {From: 2, To: 1}}, []float64{10, 8})
	if err != nil || ok {
		t.Errorf("conflicting pair: ok=%v err=%v, want infeasible", ok, err)
	}
	if _, err := SINRFeasible(pts, p, []sinr.Link{{From: 0, To: 1}}, nil); err == nil {
		t.Error("mismatched lengths not rejected")
	}
	// Affectance formulation agrees on the same two cases.
	ok, err = Feasible(pts, p, []sinr.Link{{From: 0, To: 1}}, []float64{10})
	if err != nil || !ok {
		t.Errorf("Feasible single link: ok=%v err=%v", ok, err)
	}
	ok, err = Feasible(pts, p,
		[]sinr.Link{{From: 0, To: 1}, {From: 2, To: 1}}, []float64{10, 8})
	if err != nil || ok {
		t.Errorf("Feasible conflicting pair: ok=%v err=%v, want infeasible", ok, err)
	}
}

func TestHandComputedResolveSlot(t *testing.T) {
	pts, p := handPoints(), handParams()
	txs := []sinr.Tx{{Sender: 0, Power: 10}, {Sender: 2, Power: 8}}
	// Listener 1 hears sender 0 at SINR 5 → decode.
	k, s := ResolveSlot(pts, p, txs, 1)
	if k != 0 || math.Abs(s-5) > 1e-15 {
		t.Errorf("ResolveSlot = (%d, %v), want (0, 5)", k, s)
	}
	// Listener 1 with comparable rivals: equal powers at equal distance.
	sym := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	k, _ = ResolveSlot(sym, p, []sinr.Tx{{Sender: 0, Power: 8}, {Sender: 2, Power: 8}}, 1)
	if k != -1 {
		t.Errorf("symmetric collision decoded tx %d, want -1", k)
	}
	// A co-located transmitter saturates the listener.
	k, _ = ResolveSlot(pts, p, []sinr.Tx{{Sender: 1, Power: 5}, {Sender: 0, Power: 10}}, 1)
	if k != -1 {
		t.Errorf("co-located transmitter decoded tx %d, want -1", k)
	}
	// Nothing transmitting → nothing decoded.
	if k, _ = ResolveSlot(pts, p, nil, 1); k != -1 {
		t.Errorf("empty slot decoded tx %d", k)
	}
}

// chainTree builds the obviously-valid bi-tree on a line: i → i+1 up to the
// root n-1, stamped leaf-first with one slot per link and SafePower.
func chainTree(pts []geom.Point, p sinr.Params) (*tree.BiTree, []int) {
	n := len(pts)
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	bt := &tree.BiTree{Root: n - 1, Nodes: nodes}
	for i := 0; i < n-1; i++ {
		d := pts[i].Dist(pts[i+1])
		bt.Up = append(bt.Up, tree.TimedLink{
			L:     sinr.Link{From: i, To: i + 1},
			Slot:  i + 1,
			Power: p.SafePower(d),
		})
	}
	return bt, nodes
}

func TestValidatorsAcceptChainTree(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 2.2}, {X: 3.7}, {X: 5.1}}
	p := handParams()
	bt, nodes := chainTree(pts, p)
	if err := ValidateBiTree(pts, p, bt.Root, nodes, bt.Up); err != nil {
		t.Fatalf("chain tree rejected: %v", err)
	}
	// Agreement with internal/tree on the same input.
	if err := bt.Validate(); err != nil {
		t.Fatalf("tree.Validate disagrees: %v", err)
	}
	if err := bt.ValidateOrdering(); err != nil {
		t.Fatalf("tree.ValidateOrdering disagrees: %v", err)
	}
}

func TestValidatorsRejectBrokenTrees(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 2.2}, {X: 3.7}, {X: 5.1}}
	p := handParams()

	mutate := func(f func(bt *tree.BiTree)) (*tree.BiTree, []int) {
		bt, nodes := chainTree(pts, p)
		f(bt)
		return bt, nodes
	}

	cases := []struct {
		name string
		f    func(bt *tree.BiTree)
	}{
		{"root has up-link", func(bt *tree.BiTree) {
			bt.Up = append(bt.Up, tree.TimedLink{L: sinr.Link{From: 4, To: 0}, Slot: 9, Power: 100})
		}},
		{"two up-links", func(bt *tree.BiTree) {
			bt.Up = append(bt.Up, tree.TimedLink{L: sinr.Link{From: 0, To: 2}, Slot: 9, Power: 100})
		}},
		{"self-loop", func(bt *tree.BiTree) { bt.Up[0].L.To = 0 }},
		{"leaves node set", func(bt *tree.BiTree) { bt.Up[0].L.To = 77 }},
		{"cycle", func(bt *tree.BiTree) {
			// 0→1→0 cycle detached from the root's component.
			bt.Up[0].L = sinr.Link{From: 0, To: 1}
			bt.Up[1].L = sinr.Link{From: 1, To: 0}
		}},
		{"ordering violated", func(bt *tree.BiTree) { bt.Up[0].Slot, bt.Up[1].Slot = bt.Up[1].Slot, bt.Up[0].Slot }},
		{"schedule infeasible", func(bt *tree.BiTree) {
			// Two links forced into one slot with the second's receiver
			// adjacent to the first's sender at matching powers.
			bt.Up[1].Slot = bt.Up[0].Slot
		}},
	}
	for _, tc := range cases {
		bt, nodes := mutate(tc.f)
		if err := ValidateBiTree(pts, p, bt.Root, nodes, bt.Up); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestStronglyConnectedSplit(t *testing.T) {
	up := []tree.TimedLink{{L: sinr.Link{From: 0, To: 1}}}
	if StronglyConnected([]int{0, 1, 2}, up) {
		t.Error("split accepted")
	}
	if !StronglyConnected([]int{0, 1}, up) {
		t.Error("pair rejected")
	}
	if StronglyConnected(nil, nil) {
		t.Error("empty node set accepted")
	}
}

// TestFarFieldByHand pins the naive tiled reference on a pen-and-paper
// instance: a tight pair of senders far from the receiver collapses to
// their power-weighted centroid, a nearby sender stays exact, and the
// result matches the manual formula term by term.
func TestFarFieldByHand(t *testing.T) {
	p := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1, Epsilon: 0.1}
	// Receiver region around the origin, one near interferer, and a far
	// cluster ~200 away: with cell ≥ 1 and k ≥ 2 the cluster is far for
	// any plan this geometry derives.
	pts := []geom.Point{
		{X: 0, Y: 0},   // 0: link sender
		{X: 3, Y: 0},   // 1: receiver
		{X: 5, Y: 1},   // 2: near interferer
		{X: 200, Y: 2}, // 3: far cluster member
		{X: 201, Y: 2}, // 4: far cluster member
	}
	eps := 1.0
	fp := FarPlanFor(pts, p.Alpha, eps)
	vx, vy := fp.Tile(pts[1])
	fx, fy := fp.Tile(pts[3])
	if fp.near(fx, fy, vx, vy) {
		t.Fatalf("far cluster classified near (k=%d cell=%v)", fp.K, fp.Cell)
	}
	nx, ny := fp.Tile(pts[2])
	if !fp.near(nx, ny, vx, vy) {
		t.Fatalf("near interferer classified far (k=%d cell=%v)", fp.K, fp.Cell)
	}

	pu, p2, p3, p4 := 500.0, 300.0, 40000.0, 80000.0
	txs := []sinr.Tx{{Sender: 0, Power: pu}, {Sender: 2, Power: p2}, {Sender: 3, Power: p3}, {Sender: 4, Power: p4}}
	l := sinr.Link{From: 0, To: 1}
	got := FarLinkSINR(pts, p, eps, txs, l, pu)

	// By hand: signal = pu/3³; near term exact; far cluster aggregated at
	// its power-weighted centroid.
	signal := pu / math.Pow(3, 3)
	near := p2 / math.Pow(Dist(pts, 2, 1), 3)
	cx := (p3*200 + p4*201) / (p3 + p4)
	cy := 2.0
	d := math.Hypot(pts[1].X-cx, pts[1].Y-cy)
	far := (p3 + p4) / math.Pow(d, 3)
	want := signal / (p.Noise + near + far)
	if math.Abs(got-want) > 1e-12*want {
		t.Fatalf("FarLinkSINR = %v, hand computation %v", got, want)
	}

	// The aggregate stays within the certified bracket of the exact sum.
	exact := SINR(pts, p, txs, l)
	ce := FarCertifiedErr(fp.K, p.Alpha)
	if got > exact/(1-minFar(ce)) || got < exact/(1+ce) {
		t.Fatalf("far %v outside certified bracket of exact %v (ε=%v)", got, exact, ce)
	}
}

// minFar clamps a certified ε below 1 for the upper-bracket division.
func minFar(ce float64) float64 {
	if ce >= 1 {
		return 0.999999
	}
	return ce
}
