// Package geom provides the planar-geometry substrate used by the SINR
// connectivity algorithms: points, distances, balls, length classes, a
// uniform grid index for range queries, closest/farthest pair computation,
// and a Euclidean minimum spanning tree.
//
// The paper (Halldórsson & Mitra, PODC 2012) assumes nodes are points in the
// plane with minimum pairwise distance 1; Δ denotes the maximum pairwise
// distance. Everything in this package is deterministic and allocation
// conscious: the hot path of the channel simulator calls into it every slot.
package geom
