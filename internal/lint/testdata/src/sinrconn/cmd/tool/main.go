// Command tool is the ctxdiscipline negative fixture: binaries own the
// context root, so context.Background and free parameter order are fine.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(1, ctx)
}

func run(cfg int, ctx context.Context) error {
	_ = cfg
	_ = ctx
	return nil
}
