package core

import (
	"context"
	"fmt"
	"sort"

	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// AggregationOutcome reports a physical execution of a bi-tree's
// converge-cast schedule on the channel.
type AggregationOutcome struct {
	// Value is the aggregate the root ended up with.
	Value int64
	// SlotsUsed is the number of channel slots consumed (= schedule
	// length + 1 drain slot).
	SlotsUsed int
	// Deliveries counts successful receptions.
	Deliveries int
	// Energy is the total transmission energy spent.
	Energy float64
}

// AggFunc combines two partial aggregates. It must be commutative and
// associative (max, sum, min, ...).
type AggFunc func(a, b int64) int64

// MaxAgg is the max aggregate.
func MaxAgg(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SumAgg is the sum aggregate.
func SumAgg(a, b int64) int64 { return a + b }

// RunAggregation physically executes the bi-tree's converge-cast on the
// SINR channel: in schedule order, every link of a slot transmits its
// sender's running aggregate with the stamped power, concurrently; the
// parent folds in what it decodes. Unlike the logical replay
// (tree.AggregationLatency), this run exercises the actual physics — if a
// stamped slot group were not SINR-feasible, or the ordering were wrong,
// some transfer would be lost and the root's aggregate would come out
// wrong, which the function reports as an error.
//
// values[i] is node i's initial contribution (indexed by instance node
// id); on success the outcome's Value equals f folded over the values of
// all tree nodes. ecfg carries the engine worker budget and shared pool;
// its DropProb/Seed/Observer fields are honored as-is.
func RunAggregation(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, values []int64, f AggFunc, ecfg sim.Config) (*AggregationOutcome, error) {
	if len(values) != in.Len() {
		return nil, fmt.Errorf("core: %d values for %d nodes", len(values), in.Len())
	}
	if f == nil {
		return nil, fmt.Errorf("core: nil aggregate function")
	}
	// Rank the distinct schedule slots: engine slot = rank of schedule slot.
	distinct := map[int]struct{}{}
	for _, tl := range bt.Up {
		distinct[tl.Slot] = struct{}{}
	}
	stamps := make([]int, 0, len(distinct))
	for s := range distinct {
		stamps = append(stamps, s)
	}
	sort.Ints(stamps)
	rank := make(map[int]int, len(stamps))
	for i, s := range stamps {
		rank[s] = i
	}

	inTree := make(map[int]bool, len(bt.Nodes))
	for _, v := range bt.Nodes {
		inTree[v] = true
	}
	nodes := make([]*aggNode, in.Len())
	procs := make([]sim.Protocol, in.Len())
	for i := 0; i < in.Len(); i++ {
		nodes[i] = &aggNode{
			id:     i,
			txSlot: -1,
			value:  values[i],
			fold:   f,
			member: inTree[i],
		}
		procs[i] = nodes[i]
	}
	for _, tl := range bt.Up {
		nd := nodes[tl.L.From]
		nd.txSlot = rank[tl.Slot]
		nd.parent = tl.L.To
		nd.power = tl.Power
	}

	eng, err := sim.NewEngine(in, procs, ecfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	// One extra slot drains the final deliveries into the root's fold.
	if _, err := eng.RunCtx(ctx, len(stamps)+1); err != nil {
		return nil, fmt.Errorf("core: aggregation canceled: %w", err)
	}

	expected := values[bt.Root]
	for _, v := range bt.Nodes {
		if v != bt.Root {
			expected = f(expected, values[v])
		}
	}
	got := nodes[bt.Root].value
	out := &AggregationOutcome{
		Value:      got,
		SlotsUsed:  eng.Stats().Slots,
		Deliveries: eng.Stats().Deliveries,
		Energy:     eng.Stats().Energy,
	}
	if got != expected {
		return out, fmt.Errorf("core: physical aggregation produced %d, want %d "+
			"(schedule or physics violation)", got, expected)
	}
	return out, nil
}

// aggNode executes one node's part of the converge-cast schedule.
type aggNode struct {
	id     int
	member bool
	parent int
	txSlot int // engine slot at which the out-link fires; -1 for the root
	power  float64
	value  int64
	fold   AggFunc
}

var _ sim.Protocol = (*aggNode)(nil)

// Step implements sim.Protocol: fold anything received, transmit at the
// assigned slot, listen otherwise.
func (nd *aggNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if !nd.member {
		return sim.Idle()
	}
	for _, d := range inbox {
		if d.Msg.Kind == sim.KindData && d.Msg.To == nd.id {
			nd.value = nd.fold(nd.value, d.Msg.Payload)
		}
	}
	if slot == nd.txSlot {
		return sim.Transmit(nd.power, sim.Message{
			Kind:    sim.KindData,
			From:    nd.id,
			To:      nd.parent,
			Payload: nd.value,
		})
	}
	return sim.Listen()
}
