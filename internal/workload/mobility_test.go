package workload

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

func checkSpacing(t *testing.T, pts []geom.Point) {
	t.Helper()
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < 1 {
				t.Fatalf("nodes %d and %d only %.3f apart", i, j, d)
			}
		}
	}
}

func TestRandomWaypointPreservesSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformDensity(rng, 60, 0.2)
	m := NewRandomWaypoint(rand.New(rand.NewSource(2)), pts, 0.5, 2, 1)
	totalMoves := 0
	for s := 0; s < 50; s++ {
		totalMoves += len(m.Step(0.5))
		checkSpacing(t, m.Positions())
	}
	if totalMoves == 0 {
		t.Fatal("nobody ever moved")
	}
	// The input slice is untouched — the stepper owns a copy.
	fresh := UniformDensity(rand.New(rand.NewSource(1)), 60, 0.2)
	for i := range pts {
		if pts[i] != fresh[i] {
			t.Fatal("stepper mutated the caller's points")
		}
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	base := UniformDensity(rand.New(rand.NewSource(3)), 40, 0.2)
	run := func() []geom.Point {
		m := NewRandomWaypoint(rand.New(rand.NewSource(4)), base, 0.5, 2, 0.5)
		for s := 0; s < 30; s++ {
			m.Step(0.5)
		}
		return append([]geom.Point(nil), m.Positions()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCityGridPreservesSpacingAndStreets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := UniformDensity(rng, 50, 0.1)
	lo, _ := geom.BoundingBox(pts)
	m := NewCityGrid(rand.New(rand.NewSource(6)), pts, lo, 8, 2, 0.4)
	onStreet := func(p geom.Point) bool {
		offX := math.Abs(math.Remainder(p.X-lo.X, 8))
		offY := math.Abs(math.Remainder(p.Y-lo.Y, 8))
		return offX < 1e-6 || offY < 1e-6
	}
	parked := make(map[int]bool)
	for v, p := range m.Positions() {
		if !onStreet(p) {
			parked[v] = true // snap was blocked; must never move
		}
	}
	totalMoves := 0
	for s := 0; s < 60; s++ {
		for _, v := range m.Step(0.5) {
			totalMoves++
			if parked[v] {
				t.Fatalf("parked node %d moved", v)
			}
			if !onStreet(m.Positions()[v]) {
				t.Fatalf("node %d left the street grid: %v", v, m.Positions()[v])
			}
		}
		checkSpacing(t, m.Positions())
	}
	if totalMoves == 0 {
		t.Fatal("nobody ever moved")
	}
}

func TestCityGridDeterministic(t *testing.T) {
	base := UniformDensity(rand.New(rand.NewSource(7)), 30, 0.1)
	lo, _ := geom.BoundingBox(base)
	run := func() []geom.Point {
		m := NewCityGrid(rand.New(rand.NewSource(8)), base, lo, 6, 1.5, 0.5)
		for s := 0; s < 40; s++ {
			m.Step(0.5)
		}
		return append([]geom.Point(nil), m.Positions()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}
