// Adhocmesh: an ad-hoc multi-hop network scenario. After the bi-tree is
// built, any node can message any other node by going up the aggregation
// schedule to the root and down the dissemination schedule — within twice
// the schedule length, whatever pair you pick. We measure the worst pair
// empirically and compare the Section-6 tree against the Section-8 tree.
//
//	go run ./examples/adhocmesh
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sinrconn"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	pts := scatter(rng, 72, 22)
	opt := sinrconn.Options{Seed: 9}

	initial, err := sinrconn.BuildInitialBiTree(pts, opt)
	if err != nil {
		log.Fatal(err)
	}
	refined, err := sinrconn.BuildBiTreeArbitraryPower(pts, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mesh: n=%d  Δ=%.1f\n\n", len(pts), initial.Metrics.Delta)
	fmt.Printf("%-22s %-14s %-14s %-10s\n", "structure", "schedule", "worst pair", "bound 2×len")
	for _, row := range []struct {
		name string
		res  *sinrconn.Result
	}{
		{"Init (Sec. 6)", initial},
		{"TreeViaCapacity (Sec. 8)", refined},
	} {
		worst := 0
		for trial := 0; trial < 200; trial++ {
			src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
			lat, err := row.res.Tree.PairLatency(src, dst)
			if err != nil {
				log.Fatal(err)
			}
			if lat > worst {
				worst = lat
			}
		}
		k := row.res.Metrics.ScheduleLength
		if worst > 2*k {
			log.Fatalf("%s: pair latency %d exceeds 2×schedule %d", row.name, worst, 2*k)
		}
		fmt.Printf("%-22s %-14d %-14d %-10d\n", row.name, k, worst, 2*k)
	}
	// Physically deliver one message over the refined structure: up one
	// converge-cast epoch, down one dissemination epoch, on the actual
	// channel.
	src, dst := 0, len(pts)-1
	msg, err := refined.SendMessage(src, dst, 31337, sinrconn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphysical delivery %d→%d: %v in %d channel slots (energy %.3g)\n",
		src, dst, msg.Delivered, msg.SlotsUsed, msg.Energy)

	fmt.Printf("\nPer-message latency is bounded by twice the schedule length on either\n")
	fmt.Printf("structure. The Section-6 stamps scale with log Δ·log n while the\n")
	fmt.Printf("Section-8 schedule scales with log n alone — on this instance\n")
	fmt.Printf("(Δ=%.0f, so log Δ is small) they land at %d and %d slots; crank Δ up\n",
		initial.Metrics.Delta, initial.Metrics.ScheduleLength, refined.Metrics.ScheduleLength)
	fmt.Printf("(see examples/powercompare) and the ordering flips decisively.\n")
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
