package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sinrconn/internal/geom"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// ErrNotConverged reports that Init's ladder plus safety rounds ended with
// more than one active node (possible only under extreme drop injection or
// absurd configs).
var ErrNotConverged = errors.New("core: init did not converge to a single active node")

// InitResult is the outcome of the Section 6 construction.
type InitResult struct {
	// Tree is the constructed bi-tree over the participants.
	Tree *tree.BiTree
	// SlotsUsed is the number of channel slots consumed (Theorem 2 measures
	// this as O(log Δ · log n)).
	SlotsUsed int
	// Rounds is the number of rounds executed, including safety rounds.
	Rounds int
	// LadderRounds is ⌈log Δ⌉, the planned doubling ladder length.
	LadderRounds int
	// StrayLinks counts receiver-side tentative links whose acknowledgment
	// was never confirmed by the sender — the links the paper notes are
	// "easy to clean up" (we clean them by keeping sender-confirmed links
	// only).
	StrayLinks int
	// Stats carries the engine counters.
	Stats sim.Stats
}

// Init runs the Section 6 distributed construction on the instance (or on
// cfg.Participants if set) and returns the resulting bi-tree. The slot
// stamps on the tree links are slot-pair indices: links sharing a stamp
// succeeded concurrently and are SINR-feasible together at the round powers.
//
// ctx is checked between slot-pairs: a canceled context aborts the
// construction with an error wrapping ctx.Err(), leaving any shared worker
// pool reusable.
func Init(ctx context.Context, in *sinr.Instance, cfg InitConfig) (*InitResult, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts := cfg.Participants
	if parts == nil {
		parts = make([]int, in.Len())
		for i := range parts {
			parts[i] = i
		}
	}
	if len(parts) == 0 {
		return nil, errors.New("core: no participants")
	}
	isPart := make([]bool, in.Len())
	var partPts []geom.Point
	for _, v := range parts {
		if v < 0 || v >= in.Len() {
			return nil, fmt.Errorf("core: participant %d out of range", v)
		}
		if isPart[v] {
			return nil, fmt.Errorf("core: duplicate participant %d", v)
		}
		isPart[v] = true
		partPts = append(partPts, in.Point(v))
	}
	if len(parts) == 1 {
		return &InitResult{
			Tree: &tree.BiTree{Root: parts[0], Nodes: parts},
		}, nil
	}

	// Ladder geometry: length classes must cover the longest possible link
	// among participants. With the paper's normalization (min distance 1)
	// this is exactly ⌈log₂ Δ⌉; for participant subsets whose min distance
	// exceeds 1 the max *distance* is what matters, not the ratio.
	ladder := geom.NumLengthClasses(geom.MaxDist(partPts))
	pairs := cfg.pairsPerRound(len(parts))
	p := in.Params()

	// Build per-node protocols with derived seeds.
	master := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, in.Len())
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	nodes := make([]*initNode, in.Len())
	procs := make([]sim.Protocol, in.Len())
	for i := 0; i < in.Len(); i++ {
		nodes[i] = &initNode{
			id:            i,
			cfg:           &cfg,
			rng:           rand.New(rand.NewSource(seeds[i])),
			participating: isPart[i],
			active:        isPart[i],
			parent:        -1,
			broadcastPair: -1,
		}
		procs[i] = nodes[i]
	}
	eng, err := sim.NewEngine(in, procs, cfg.engineConfig(cfg.Seed^0x5DEECE66D))
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	activeCount := func() int {
		c := 0
		for _, v := range parts {
			if nodes[v].active {
				c++
			}
		}
		return c
	}

	res := &InitResult{LadderRounds: ladder}
	runRound := func(spec roundSpec) (bool, error) {
		res.Rounds++
		for k := 0; k < pairs; k++ {
			if err := checkCtx(ctx, "init"); err != nil {
				return false, err
			}
			for i := range nodes {
				nodes[i].spec = spec
			}
			eng.Step() // data slot
			eng.Step() // ack slot
			if activeCount() <= 1 {
				// One more pair so a just-acknowledged broadcaster can
				// consume its ack — harmless when none is pending.
				for i := range nodes {
					nodes[i].spec = spec
				}
				eng.Step()
				eng.Step()
				return true, nil
			}
		}
		return activeCount() <= 1, nil
	}

	converged := false
	for r := 1; r <= ladder && !converged; r++ {
		hi := math.Exp2(float64(r))
		lo := math.Exp2(float64(r - 1))
		if !cfg.StrictGate {
			lo = 0
		}
		if converged, err = runRound(roundSpec{lo: lo, hi: hi, power: p.SafePower(hi)}); err != nil {
			res.SlotsUsed = eng.Stats().Slots
			res.Stats = eng.Stats()
			return res, err
		}
	}
	// Safety rounds: top length class, permissive gate.
	topHi := math.Exp2(float64(ladder))
	for x := 0; x < cfg.ExtraRounds && !converged; x++ {
		if converged, err = runRound(roundSpec{lo: 0, hi: topHi, power: p.SafePower(topHi)}); err != nil {
			res.SlotsUsed = eng.Stats().Slots
			res.Stats = eng.Stats()
			return res, err
		}
	}

	res.SlotsUsed = eng.Stats().Slots
	res.Stats = eng.Stats()
	if !converged {
		return res, fmt.Errorf("%w: %d active after %d rounds",
			ErrNotConverged, activeCount(), res.Rounds)
	}

	// Assemble the tree from sender-confirmed records (stray cleanup).
	bt := &tree.BiTree{Nodes: append([]int(nil), parts...)}
	root := -1
	confirmedChild := make(map[sinr.Link]bool)
	for _, v := range parts {
		nd := nodes[v]
		if nd.active {
			root = v
			continue
		}
		if nd.outLink == nil {
			return res, fmt.Errorf("core: inactive node %d has no out-link", v)
		}
		bt.Up = append(bt.Up, *nd.outLink)
		confirmedChild[sinr.Link{From: nd.outLink.L.To, To: nd.outLink.L.From}] = true
	}
	for _, v := range parts {
		for _, cl := range nodes[v].tentative {
			if !confirmedChild[sinr.Link{From: v, To: cl}] {
				res.StrayLinks++
			}
		}
	}
	if root < 0 {
		return res, errors.New("core: no active root found")
	}
	bt.Root = root
	res.Tree = bt
	return res, nil
}

// roundSpec is the per-round physical configuration: the distance gate
// [lo, hi) and the broadcast power 2βN·hi^α.
type roundSpec struct {
	lo, hi float64
	power  float64
}

// initNode is the per-node state machine of the Section 6 protocol.
type initNode struct {
	id            int
	cfg           *InitConfig
	rng           *rand.Rand
	participating bool
	active        bool
	parent        int
	outLink       *tree.TimedLink
	// tentative lists receiver-side child records (including strays whose
	// ack was lost).
	tentative []int
	// broadcastPair is the pair index of an outstanding broadcast awaiting
	// acknowledgment, or -1.
	broadcastPair int
	pendingPower  float64
	// spec is the current round configuration, set by the driver before
	// each pair. Reads happen inside Step, writes between engine steps, so
	// there is no race.
	spec roundSpec
}

var _ sim.Protocol = (*initNode)(nil)

// Step implements sim.Protocol. Even slots are broadcast slots, odd slots
// are acknowledgment slots.
func (nd *initNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if !nd.participating {
		return sim.Idle()
	}
	if slot%2 == 0 {
		return nd.broadcastSlot(slot, inbox)
	}
	return nd.ackSlot(inbox)
}

func (nd *initNode) broadcastSlot(slot int, inbox []sim.Delivery) sim.Action {
	// Consume an acknowledgment from the previous pair: on success this
	// node connects to its new parent and leaves the protocol.
	if nd.broadcastPair >= 0 {
		for _, d := range inbox {
			if d.Msg.Kind == sim.KindAck && d.Msg.To == nd.id {
				nd.active = false
				nd.parent = d.Msg.From
				nd.outLink = &tree.TimedLink{
					L:     sinr.Link{From: nd.id, To: nd.parent},
					Slot:  nd.broadcastPair,
					Power: nd.pendingPower,
				}
				break
			}
		}
		nd.broadcastPair = -1
	}
	if !nd.active {
		return sim.Idle()
	}
	if nd.rng.Float64() < nd.cfg.BroadcastProb {
		nd.broadcastPair = slot / 2
		nd.pendingPower = nd.spec.power
		return sim.Transmit(nd.spec.power, sim.Message{
			Kind: sim.KindBroadcast,
			From: nd.id,
		})
	}
	return sim.Listen()
}

func (nd *initNode) ackSlot(inbox []sim.Delivery) sim.Action {
	if !nd.active {
		return sim.Idle()
	}
	if nd.broadcastPair >= 0 {
		return sim.Listen() // we broadcast; await the acknowledgment
	}
	for _, d := range inbox {
		if d.Msg.Kind != sim.KindBroadcast {
			continue
		}
		if d.Dist < nd.spec.lo || d.Dist >= nd.spec.hi {
			continue // out of this round's length class
		}
		if nd.rng.Float64() >= nd.cfg.AckProb {
			continue
		}
		// Tentative child record; confirmed only if the sender hears this
		// acknowledgment (stray otherwise — cleaned up by the driver).
		nd.tentative = append(nd.tentative, d.Msg.From)
		return sim.Transmit(nd.spec.power, sim.Message{
			Kind: sim.KindAck,
			From: nd.id,
			To:   d.Msg.From,
		})
	}
	return sim.Listen()
}
