package power

import (
	"errors"
	"math"

	"sinrconn/internal/sinr"
)

// ErrInfeasible reports that the Foschini–Miljanic dynamics diverged: no
// power assignment can make the link set SINR-feasible.
var ErrInfeasible = errors.New("power: link set infeasible under any power assignment")

// Options tunes the solver.
type Options struct {
	// MaxIter caps the number of synchronous iterations (default 200).
	MaxIter int
	// Slack multiplies the SINR target β during solving (default 1.0). A
	// slack slightly above 1 produces powers with margin.
	Slack float64
	// Tol is the relative-change convergence threshold (default 1e-9).
	Tol float64
	// PowerCap aborts with ErrInfeasible when any power exceeds it
	// (default: 1e18 × the largest noise-only requirement).
	PowerCap float64
}

func (o *Options) defaults(in *sinr.Instance, links []sinr.Link) {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Slack <= 0 {
		o.Slack = 1
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.PowerCap <= 0 {
		maxReq := 0.0
		for _, l := range links {
			if r := in.Params().MinPower(in.Length(l)); r > maxReq {
				maxReq = r
			}
		}
		if maxReq == 0 {
			maxReq = 1
		}
		o.PowerCap = maxReq * 1e18
	}
}

// Solve computes a feasible power vector for links, or ErrInfeasible. The
// returned powers satisfy SINR ≥ Slack·β for every link when all links
// transmit simultaneously. Iterations is the number of rounds used.
func Solve(in *sinr.Instance, links []sinr.Link, opts Options) (powers []float64, iterations int, err error) {
	n := len(links)
	if n == 0 {
		return nil, 0, nil
	}
	opts.defaults(in, links)
	p := in.Params()
	target := p.Beta * opts.Slack

	// Precompute gains g[i][j]: path gain from sender of link j to receiver
	// of link i (d^-α), and the direct gain of each link.
	gain := make([][]float64, n)
	direct := make([]float64, n)
	for i, li := range links {
		gain[i] = make([]float64, n)
		for j, lj := range links {
			if i == j {
				continue
			}
			g := in.Gain(lj.From, li.To)
			if math.IsInf(g, 1) {
				// Co-located interferer sender on this receiver: hopeless.
				return nil, 0, ErrInfeasible
			}
			gain[i][j] = g
		}
		direct[i] = in.Gain(li.From, li.To)
	}

	powers = make([]float64, n)
	for i := range powers {
		powers[i] = target * p.Noise / direct[i] // noise-only requirement
	}
	next := make([]float64, n)
	for it := 1; it <= opts.MaxIter; it++ {
		maxRel := 0.0
		for i := range links {
			interf := 0.0
			for j := range links {
				interf += gain[i][j] * powers[j]
			}
			req := target * (p.Noise + interf) / direct[i]
			next[i] = req
			if powers[i] > 0 {
				if rel := math.Abs(req-powers[i]) / powers[i]; rel > maxRel {
					maxRel = rel
				}
			}
			if req > opts.PowerCap || math.IsInf(req, 1) || math.IsNaN(req) {
				return nil, it, ErrInfeasible
			}
		}
		copy(powers, next)
		iterations = it
		if maxRel < opts.Tol {
			return powers, iterations, nil
		}
	}
	// No convergence within budget: verify the final vector directly; the
	// dynamics are monotone, so a feasible final vector is a valid answer.
	ok, ferr := in.SINRFeasible(links, powers)
	if ferr != nil {
		return nil, iterations, ferr
	}
	if !ok {
		return nil, iterations, ErrInfeasible
	}
	return powers, iterations, nil
}

// SolveTable is Solve returning a sinr.PerLink assignment for convenience.
func SolveTable(in *sinr.Instance, links []sinr.Link, opts Options) (sinr.PerLink, int, error) {
	powers, it, err := Solve(in, links, opts)
	if err != nil {
		return sinr.PerLink{}, it, err
	}
	pl := sinr.NewPerLink(nil)
	for i, l := range links {
		pl.Table[l] = powers[i]
	}
	return pl, it, nil
}
