// Package faults is the dual-analyzer fixture: its import path sits in
// the replay-deterministic set (an injection plan must fire on the same
// visits every run) AND it is a library package under ctxdiscipline, so
// one file pins findings from both analyzers at once.
package faults

import (
	"context"
	"math/rand"
	"sort"
	"time"
)

// BadFire commits the determinism sins an injector must never commit:
// deciding from the wall clock, the process-global RNG, or map order.
func BadFire(rates map[string]float64) (bool, int) {
	armed := time.Now().UnixNano()%2 == 0 // want `wall-clock read time.Now`
	roll := rand.Float64()                // want `rand.Float64 draws from the process-global source`
	n := 0
	for site := range rates { // want `map iteration order is random`
		n += len(site)
	}
	return armed, int(roll) + n
}

// BadInject mints its own root context and hides the ctx parameter in
// the middle of the signature — both ctxdiscipline findings.
func BadInject(site string, ctx context.Context, delay time.Duration) error { // want `BadInject: context.Context must be the first parameter`
	waitCtx, cancel := context.WithTimeout(context.Background(), delay) // want `context.Background\(\) in a library package`
	defer cancel()
	_ = site
	<-waitCtx.Done()
	return ctx.Err()
}

// GoodFire shows the sanctioned forms: a caller-seeded source, duration
// constants, and the collect-then-sort idiom for the site map.
func GoodFire(ctx context.Context, seed int64, rates map[string]float64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]string, 0, len(rates))
	for site := range rates {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	_ = rng.Uint64()
	return sites, ctx.Err()
}
