// Sensorfield: a wireless sensor network scenario (the paper's motivating
// use case). Sensors are deployed in clustered pockets across a field; the
// bi-tree doubles as the data-aggregation structure. We aggregate a max
// temperature reading up the converge-cast tree, slot by slot, following
// the computed schedule — and confirm the sink learns the true maximum in
// exactly the promised number of slots.
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"

	"sinrconn"
)

func main() {
	if err := run(os.Stdout, 80, 5, 7, 60, 3); err != nil {
		log.Fatal(err)
	}
}

// run deploys n sensors in k pockets of the given radius on a span×span
// field, builds the aggregation tree, and executes one physical epoch.
// seed drives the protocol randomness only; the deployment seed is fixed
// so the example's field (and narrative output) stays stable across seeds.
func run(out io.Writer, n, k int, radius, span float64, seed int64) error {
	rng := rand.New(rand.NewSource(11))
	pts := clusteredField(rng, n, k, radius, span)

	res, err := sinrconn.BuildBiTreeMeanPower(pts, sinrconn.Options{Seed: seed})
	if err != nil {
		return err
	}
	if err := res.Tree.Verify(); err != nil {
		return err
	}
	m := res.Metrics
	fmt.Fprintf(out, "sensor field: %d sensors in %d pockets, Δ=%.1f\n", len(pts), k, m.Delta)
	fmt.Fprintf(out, "aggregation tree: root (sink) = node %d, %d slots/epoch, built in %d channel slots\n",
		res.Tree.Root, m.ScheduleLength, m.SlotsUsed)

	// Synthetic readings: a hotspot near the first pocket.
	readings := make([]float64, len(pts))
	trueMax := math.Inf(-1)
	for i, p := range pts {
		readings[i] = 15 + 10*math.Exp(-(p.X*p.X+p.Y*p.Y)/800) + rng.Float64()*2
		if readings[i] > trueMax {
			trueMax = readings[i]
		}
	}

	// Execute one epoch physically on the SINR channel: every link
	// transmits its running max in its scheduled slot at its stamped
	// power. Fixed-point centi-degrees ride in the message payload.
	values := make([]int64, len(pts))
	for i, r := range readings {
		values[i] = int64(math.Round(r * 100))
	}
	outcome, err := res.Aggregate(values, sinrconn.MaxAgg, sinrconn.Options{})
	if err != nil {
		return fmt.Errorf("epoch failed on the channel: %w", err)
	}
	sinkMax := float64(outcome.Value) / 100
	fmt.Fprintf(out, "physical epoch: sink read max=%.2f°C (true max %.2f°C) in %d channel slots\n",
		sinkMax, trueMax, outcome.SlotsUsed)
	fmt.Fprintf(out, "energy spent this epoch: %.3g; converge-cast latency metric: %d slots\n",
		outcome.Energy, m.AggregationLatency)
	if math.Abs(sinkMax-trueMax) > 0.01 {
		return fmt.Errorf("aggregation lost the maximum — schedule violation")
	}
	return nil
}

// clusteredField places n sensors in k pockets of the given radius on a
// span×span field, minimum pairwise distance 1.
func clusteredField(rng *rand.Rand, n, k int, radius, span float64) []sinrconn.Point {
	centers := make([]sinrconn.Point, k)
	for i := range centers {
		centers[i] = sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
	}
	var pts []sinrconn.Point
	fails := 0
	for len(pts) < n {
		c := centers[rng.Intn(k)]
		ang := rng.Float64() * 2 * math.Pi
		rad := math.Sqrt(rng.Float64()) * radius
		cand := sinrconn.Point{X: c.X + rad*math.Cos(ang), Y: c.Y + rad*math.Sin(ang)}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
			fails = 0
		} else if fails++; fails > 5000 {
			radius *= 1.3
			fails = 0
		}
	}
	return pts
}
