// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := rand.Intn(4) // want `process-global source`
//
// Each want payload is a regexp (backquoted or double-quoted) that must
// match a diagnostic reported on that line; diagnostics with no matching
// want, and wants with no matching diagnostic, fail the test. Fixture
// packages live at testdata/src/<importpath> so analyzers that key on
// import paths (oraclepurity) see the real package identity.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sinrconn/internal/lint"
	"sinrconn/internal/lint/analysis"
	"sinrconn/internal/lint/loader"
)

// Run loads each fixture package (an import path under testdata/src) and
// reports every mismatch between the analyzer's diagnostics and the
// fixture's // want comments. testdata is the absolute path of the
// testdata directory.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, fixtures...)
}

// RunAll is Run over several analyzers at once: each fixture package is
// loaded once and every analyzer's diagnostics are pooled before matching
// against the // want comments, so a single fixture can pin findings from
// more than one analyzer (e.g. determinism + ctxdiscipline on the same
// file).
func RunAll(t *testing.T, testdata string, as []*analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	for _, fixture := range fixtures {
		t.Run(strings.ReplaceAll(fixture, "/", "_"), func(t *testing.T) {
			t.Helper()
			ld := loader.New(testdata) // go list runs are only for stdlib deps
			pkg, err := ld.LoadDir(filepath.Join(root, filepath.FromSlash(fixture)), fixture, root)
			if err != nil {
				t.Fatalf("load fixture %s: %v", fixture, err)
			}
			diags, err := lint.RunPackage(ld.Fset, pkg, as)
			if err != nil {
				t.Fatalf("run on %s: %v", fixture, err)
			}
			check(t, ld.Fset, pkg, diags)
		})
	}
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRx pulls the payload out of a // want comment: one or more quoted
// regexps.
var wantRx = regexp.MustCompile("//[ \t]*want[ \t]+(.*)$")

func check(t *testing.T, fset *token.FileSet, pkg *loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitQuoted(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// splitQuoted extracts backquoted or double-quoted segments from a want
// payload: `a` "b" → [a b].
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) < 2 {
			return out
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}
