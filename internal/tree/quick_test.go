package tree

// Property-based tests on the bi-tree invariants.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sinrconn/internal/sinr"
)

// genTree derives a random recursive tree with valid leaf-first slots from
// a seed.
func genTree(seed int64) *BiTree {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(30)
	tr := &BiTree{Root: 0}
	for i := 0; i < n; i++ {
		tr.Nodes = append(tr.Nodes, i)
	}
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		tr.Up = append(tr.Up, TimedLink{
			L:     sinr.Link{From: i, To: p},
			Slot:  n - i,
			Power: 1 + rng.Float64()*100,
		})
	}
	return tr
}

// Property: Compact preserves relative slot order and yields NumSlots = k.
func TestQuickCompactPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTree(seed)
		rng := rand.New(rand.NewSource(seed ^ 7))
		// Randomize stamps (possibly with collisions and gaps).
		for i := range tr.Up {
			tr.Up[i].Slot = rng.Intn(10) * 7
		}
		before := append([]TimedLink(nil), tr.Up...)
		k := tr.Compact()
		if k != tr.NumSlots() {
			return false
		}
		for i := range tr.Up {
			for j := range tr.Up {
				bi, bj := before[i].Slot, before[j].Slot
				ai, aj := tr.Up[i].Slot, tr.Up[j].Slot
				if (bi < bj) != (ai < aj) && bi != bj {
					return false
				}
				if bi == bj && ai != aj {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: random recursive trees with leaf-first slots always validate,
// and their latency replays succeed with latency ≤ NumSlots.
func TestQuickRandomTreesValid(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTree(seed)
		if tr.Validate() != nil || tr.ValidateOrdering() != nil || !tr.StronglyConnected() {
			return false
		}
		agg, err := tr.AggregationLatency()
		if err != nil || agg > tr.NumSlots() {
			return false
		}
		bc, err := tr.BroadcastLatency()
		if err != nil || bc > tr.NumSlots() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Down() is an involution up to schedule reversal — applying the
// dual transform twice returns the original links and slots.
func TestQuickDownTwiceIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTree(seed)
		down := tr.Down()
		tmp := &BiTree{Root: tr.Root, Nodes: tr.Nodes, Up: down}
		downdown := tmp.Down()
		if len(downdown) != len(tr.Up) {
			return false
		}
		orig := make(map[sinr.Link]int, len(tr.Up))
		for _, tl := range tr.Up {
			orig[tl.L] = tl.Slot
		}
		for _, tl := range downdown {
			s, ok := orig[tl.L]
			if !ok || s != tl.Slot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: PairLatency between any two nodes succeeds on a valid tree and
// is bounded by 2× the schedule length.
func TestQuickPairLatencyBounded(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTree(seed)
		rng := rand.New(rand.NewSource(seed ^ 99))
		n := len(tr.Nodes)
		for trial := 0; trial < 4; trial++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			lat, err := tr.PairLatency(src, dst)
			if err != nil || lat > 2*tr.NumSlots() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Degrees sums to exactly 2·|links| and MaxDegree bounds every
// entry.
func TestQuickDegreeAccounting(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTree(seed)
		deg := tr.Degrees()
		sum := 0
		max := tr.MaxDegree()
		for _, d := range deg {
			sum += d
			if d > max {
				return false
			}
		}
		return sum == 2*len(tr.Up)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
