package sinr

// The Morton-layout drift gates. PR 9 re-laid the pyramid in Z-order (a
// node's children are t<<2 .. t<<2|3 instead of row-major (2y+dy)·2dim +
// 2x+dx) and specialized the α power kernel; the claim is that the layout
// is a pure relabeling — every float expression folds and compares the
// same values in the same order, so aggregates, walks, and SINR values are
// BIT-IDENTICAL to the old engine, not merely close. These tests carry a
// trimmed transcription of the pre-Morton kernel (git history: the
// row-major quadtree.go) and pin the live kernel against it across the
// full generator matrix × α × ε.

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"sinrconn/internal/workload"
)

// naiveMorton is the per-bit reference interleave (independently
// re-derived here; TestMortonOracleLockstep in the black-box suite crosses
// the codec against oracle.Morton as well — this package cannot import the
// oracle without a cycle through internal/tree).
func naiveMorton(x, y int32) int32 {
	var id int32
	for i := 0; i < 16; i++ {
		id |= (x >> i & 1) << (2 * i)
		id |= (y >> i & 1) << (2*i + 1)
	}
	return id
}

// TestMortonRoundTrip exhaustively checks the byte-table codec against the
// naive per-bit interleave at every supported depth: encode∘decode is the
// identity on [0,2^d)² and every code is in range.
func TestMortonRoundTrip(t *testing.T) {
	for d := 0; d <= maxQuadLevels; d++ {
		dim := int32(1) << d
		for y := int32(0); y < dim; y++ {
			for x := int32(0); x < dim; x++ {
				c := MortonEncode(x, y)
				if want := naiveMorton(x, y); c != want {
					t.Fatalf("depth %d: MortonEncode(%d,%d) = %d, naive %d", d, x, y, c, want)
				}
				if c < 0 || c >= dim*dim {
					t.Fatalf("depth %d: MortonEncode(%d,%d) = %d outside [0,%d)", d, x, y, c, dim*dim)
				}
				gx, gy := MortonDecode(c)
				if gx != x || gy != y {
					t.Fatalf("depth %d: MortonDecode(MortonEncode(%d,%d)) = (%d,%d)", d, x, y, gx, gy)
				}
			}
		}
	}
	// Codes are dense: every id in [0, dim²) decodes into the grid.
	for d := 0; d <= maxQuadLevels; d++ {
		dim := int32(1) << d
		for id := int32(0); id < dim*dim; id++ {
			x, y := MortonDecode(id)
			if x < 0 || x >= dim || y < 0 || y >= dim || MortonEncode(x, y) != id {
				t.Fatalf("depth %d: id %d decodes to (%d,%d) outside the grid or not a fixed point", d, id, x, y)
			}
		}
	}
}

// legacyScratch is the pre-Morton (row-major) per-slot state, transcribed
// from the old quadtree.go: node-local ids are y·dim + x, a parent is
// (y>>1)·(dim>>1) + x>>1, and the power kernel is the generic PowAlphaSq.
// It shares the live plan's geometry (identical by TestQuadPlanLockstep —
// the layout change did not touch the plan derivation).
type legacyScratch struct {
	q      *QuadTree
	leafOf []int32 // row-major leaf of each node
	epoch  uint32
	stamp  []uint32
	mass   []float64
	cenX   []float64
	cenY   []float64
	pmax   []float64
	active [][]int32
	start  []int32
	fill   []int32
	order  []int32
}

func newLegacyScratch(q *QuadTree) *legacyScratch {
	n := len(q.in.pts)
	leafOf := make([]int32, n)
	for i, m := range q.leafOf {
		x, y := MortonDecode(m)
		leafOf[i] = y*q.leafDim + x
	}
	active := make([][]int32, q.levels+1)
	for lvl := range active {
		active[lvl] = make([]int32, 0, 1<<(2*lvl))
	}
	return &legacyScratch{
		q:      q,
		leafOf: leafOf,
		stamp:  make([]uint32, q.nodes),
		mass:   make([]float64, q.nodes),
		cenX:   make([]float64, q.nodes),
		cenY:   make([]float64, q.nodes),
		pmax:   make([]float64, q.nodes),
		active: active,
		start:  make([]int32, q.Leaves()),
		fill:   make([]int32, q.Leaves()),
		order:  make([]int32, n),
	}
}

func (sc *legacyScratch) accumulate(txs []Tx) {
	q := sc.q
	sc.epoch++
	ep := sc.epoch
	l := q.levels
	for lvl := range sc.active {
		sc.active[lvl] = sc.active[lvl][:0]
	}
	leafOff := q.levelOff[l]
	leaves := sc.active[l]
	for i := range txs {
		t := sc.leafOf[txs[i].Sender]
		g := leafOff + t
		if sc.stamp[g] != ep {
			sc.stamp[g] = ep
			sc.mass[g], sc.cenX[g], sc.cenY[g], sc.pmax[g] = 0, 0, 0, 0
			sc.fill[t] = 0
			leaves = append(leaves, t)
		}
		p := txs[i].Power
		pt := q.in.pts[txs[i].Sender]
		sc.mass[g] += p
		sc.cenX[g] += p * pt.X
		sc.cenY[g] += p * pt.Y
		if p > sc.pmax[g] {
			sc.pmax[g] = p
		}
		sc.fill[t]++
	}
	sc.active[l] = leaves
	ofs := int32(0)
	for _, t := range leaves {
		sc.start[t] = ofs
		ofs += sc.fill[t]
		sc.fill[t] = 0
	}
	for i := range txs {
		t := sc.leafOf[txs[i].Sender]
		sc.order[sc.start[t]+sc.fill[t]] = int32(i)
		sc.fill[t]++
	}
	for lvl := l; lvl > 0; lvl-- {
		dim := int32(1) << lvl
		childOff := q.levelOff[lvl]
		parentOff := q.levelOff[lvl-1]
		plist := sc.active[lvl-1]
		for _, t := range sc.active[lvl] {
			x, y := t%dim, t/dim
			pl := (y>>1)*(dim>>1) + x>>1
			pg := parentOff + pl
			g := childOff + t
			if sc.stamp[pg] != ep {
				sc.stamp[pg] = ep
				sc.mass[pg], sc.cenX[pg], sc.cenY[pg], sc.pmax[pg] = 0, 0, 0, 0
				plist = append(plist, pl)
			}
			sc.mass[pg] += sc.mass[g]
			sc.cenX[pg] += sc.cenX[g]
			sc.cenY[pg] += sc.cenY[g]
			if sc.pmax[g] > sc.pmax[pg] {
				sc.pmax[pg] = sc.pmax[g]
			}
		}
		sc.active[lvl-1] = plist
	}
	for lvl := 0; lvl <= l; lvl++ {
		off := q.levelOff[lvl]
		for _, t := range sc.active[lvl] {
			g := off + t
			if m := sc.mass[g]; m > 0 {
				sc.cenX[g] /= m
				sc.cenY[g] /= m
			}
		}
	}
}

func (sc *legacyScratch) resolve(v int, txs []Tx) (best int, bestRP, total float64, saturated bool) {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	pv := in.pts[v]
	best = -1
	ep := sc.epoch
	l := q.levels
	var stack [quadStackCap]int64
	if sc.stamp[0] != ep {
		return best, 0, 0, false
	}
	stack[0] = 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - sc.cenX[g]
		dy := pv.Y - sc.cenY[g]
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			gc := 1 / PowAlphaSq(d2, alpha)
			if sc.pmax[g]*gc*q.refineFac <= bestRP {
				total += sc.mass[g] * gc
				continue
			}
		}
		if lvl == l {
			for _, oi := range sc.order[sc.start[t] : sc.start[t]+sc.fill[t]] {
				tr := &txs[oi]
				sd2 := pv.DistSq(in.pts[tr.Sender])
				if sd2 == 0 {
					return -1, 0, 0, true
				}
				rp := tr.Power / PowAlphaSq(sd2, alpha)
				total += rp
				if rp > bestRP {
					bestRP = rp
					best = int(oi)
				}
			}
			continue
		}
		dim := int32(1) << lvl
		x := t % dim
		y := t / dim
		cdim := dim << 1
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		cside := q.side[lvl+1]
		var nx, ny int32
		if pv.X >= q.ox+float64(2*x+1)*cside {
			nx = 1
		}
		if pv.Y >= q.oy+float64(2*y+1)*cside {
			ny = 1
		}
		cx := 2*x + nx
		cy := 2*y + ny
		for _, c := range [4]int32{(cy^1)*cdim + (cx ^ 1), (cy^1)*cdim + cx, cy*cdim + (cx ^ 1), cy*cdim + cx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return best, bestRP, total, false
}

func (sc *legacyScratch) linkSINR(txs []Tx, l Link, pu float64) float64 {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	u, v := l.From, l.To
	pv := in.pts[v]
	signal := pu / PowAlphaSq(pv.DistSq(in.pts[u]), alpha)
	if signal == 0 {
		return 0
	}
	ep := sc.epoch
	lv := q.levels
	ul := sc.leafOf[u]
	ux, uy := ul%q.leafDim, ul/q.leafDim
	interference := 0.0
	if sc.stamp[0] != ep {
		return signal / in.params.Noise
	}
	var stack [quadStackCap]int64
	stack[0] = 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - sc.cenX[g]
		dy := pv.Y - sc.cenY[g]
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			m := sc.mass[g]
			shift := uint(lv - lvl)
			dim := int32(1) << lvl
			if t%dim == ux>>shift && t/dim == uy>>shift {
				m -= pu
			}
			if m <= 0 {
				continue
			}
			interference += m / PowAlphaSq(d2, alpha)
			continue
		}
		if lvl == lv {
			for _, oi := range sc.order[sc.start[t] : sc.start[t]+sc.fill[t]] {
				tr := &txs[oi]
				if tr.Sender == u {
					continue
				}
				interference += tr.Power / PowAlphaSq(pv.DistSq(in.pts[tr.Sender]), alpha)
			}
			continue
		}
		dim := int32(1) << lvl
		cx := t % dim * 2
		cy := t / dim * 2
		cdim := dim << 1
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		for _, c := range [4]int32{(cy+1)*cdim + cx + 1, (cy+1)*cdim + cx, cy*cdim + cx + 1, cy*cdim + cx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return signal / (in.params.Noise + interference)
}

// driftTxSet builds a distinct-sender set covering about half the nodes.
func driftTxSet(rng *rand.Rand, n, m int) []Tx {
	perm := rng.Perm(n)
	txs := make([]Tx, 0, m)
	for _, s := range perm[:m] {
		txs = append(txs, Tx{Sender: s, Power: 1 + rng.Float64()*99})
	}
	return txs
}

func driftFloatName(f float64) string {
	return strings.ReplaceAll(strconv.FormatFloat(f, 'g', -1, 64), ".", "p")
}

// TestMortonLayoutDriftGate pins the Morton-ordered kernel bit-identical
// to the transcribed row-major engine across the full generator matrix ×
// α × ε: every pyramid aggregate at every (level, x, y), every Resolve
// tuple, and every LinkSINR value must be EXACTLY equal — the layout is a
// relabeling, and any ulp of drift here is a broken fold or walk order.
// α = 2, 3, 4 additionally cross the specialized power kernel against the
// generic PowAlphaSq the legacy code used.
func TestMortonLayoutDriftGate(t *testing.T) {
	epsSweep := []float64{0.1, 0.5, 2.5}
	for _, spec := range workload.Matrix() {
		for _, alpha := range []float64{2, 2.5, 3, 4} {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+driftFloatName(alpha), func(t *testing.T) {
				const n = 80
				rng := rand.New(rand.NewSource(917))
				pts := spec.Gen(rng, n)
				p := DefaultParams()
				p.Alpha = alpha
				in, err := NewInstance(pts, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range epsSweep {
					q, err := in.QuadTree(eps)
					if err != nil {
						t.Fatal(err)
					}
					sc := q.NewScratch()
					leg := newLegacyScratch(q)
					txs := driftTxSet(rng, n, n/2)
					sc.Accumulate(txs)
					leg.accumulate(txs)

					// Pyramid aggregates: node (lvl, x, y) lives at
					// levelOff+y·dim+x in the legacy layout and at
					// levelOff+Morton(x,y) in the live one.
					for lvl := 0; lvl <= q.levels; lvl++ {
						dim := int32(1) << lvl
						off := q.levelOff[lvl]
						for y := int32(0); y < dim; y++ {
							for x := int32(0); x < dim; x++ {
								lg := off + y*dim + x
								ng := off + MortonEncode(x, y)
								lon := leg.stamp[lg] == leg.epoch
								non := sc.stamp[ng] == sc.epoch
								if lon != non {
									t.Fatalf("eps %v level %d node (%d,%d): occupancy legacy %v live %v",
										eps, lvl, x, y, lon, non)
								}
								if !lon {
									continue
								}
								if leg.mass[lg] != sc.mass[ng] || leg.cenX[lg] != sc.cenX[ng] ||
									leg.cenY[lg] != sc.cenY[ng] || leg.pmax[lg] != sc.pmax[ng] {
									t.Fatalf("eps %v level %d node (%d,%d): aggregates legacy (%v,%v,%v,%v) live (%v,%v,%v,%v)",
										eps, lvl, x, y,
										leg.mass[lg], leg.cenX[lg], leg.cenY[lg], leg.pmax[lg],
										sc.mass[ng], sc.cenX[ng], sc.cenY[ng], sc.pmax[ng])
								}
							}
						}
					}

					// Resolve at every listener: identical tuples, bit for bit.
					for v := 0; v < n; v++ {
						nb, nrp, nt, ns := sc.Resolve(v, txs)
						lb, lrp, lt, ls := leg.resolve(v, txs)
						if nb != lb || nrp != lrp || nt != lt || ns != ls {
							t.Fatalf("eps %v listener %d: Resolve live (%d,%v,%v,%v) legacy (%d,%v,%v,%v)",
								eps, v, nb, nrp, nt, ns, lb, lrp, lt, ls)
						}
					}

					// LinkSINR for every sender against rotating receivers.
					for k, tx := range txs {
						to := (tx.Sender + 1 + k) % n
						if to == tx.Sender {
							to = (to + 1) % n
						}
						l := Link{From: tx.Sender, To: to}
						if got, want := sc.LinkSINR(txs, l, tx.Power), leg.linkSINR(txs, l, tx.Power); got != want {
							t.Fatalf("eps %v LinkSINR(%v): live %v legacy %v", eps, l, got, want)
						}
					}
				}
			})
		}
	}
}
