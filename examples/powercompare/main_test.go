package main

import (
	"io"
	"testing"
)

// TestRunSmoke compiles and runs all four pipelines on a tiny chain
// ("exit 0" = run returns nil).
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 12, 1.3, 13); err != nil {
		t.Fatal(err)
	}
}
