package sim

import (
	"testing"
)

func TestObserverSeesEverySlot(t *testing.T) {
	in := lineInstance(t, 0, 3)
	p := in.Params()
	var acts []Action
	for s := 0; s < 6; s++ {
		if s%2 == 0 {
			acts = append(acts, Transmit(p.SafePower(4), Message{From: 0}))
		} else {
			acts = append(acts, Listen())
		}
	}
	sender := &scripted{actions: acts}
	listener := &scripted{actions: []Action{Listen(), Listen(), Listen(), Listen(), Listen(), Listen()}}

	var events []SlotEvent
	e, err := NewEngine(in, []Protocol{sender, listener}, Config{
		Workers:  1,
		Observer: func(ev SlotEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(6)
	if len(events) != 6 {
		t.Fatalf("observer saw %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Slot != i {
			t.Errorf("event %d has slot %d", i, ev.Slot)
		}
		wantSenders := 0
		if i%2 == 0 {
			wantSenders = 1
		}
		if ev.Senders != wantSenders {
			t.Errorf("slot %d: senders = %d, want %d", i, ev.Senders, wantSenders)
		}
		if ev.Deliveries != wantSenders {
			t.Errorf("slot %d: deliveries = %d, want %d", i, ev.Deliveries, wantSenders)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	in := lineInstance(t, 0, 3)
	pw := in.Params().SafePower(4)
	sender := &scripted{actions: []Action{
		Transmit(pw, Message{From: 0}),
		Transmit(pw, Message{From: 0}),
		Listen(),
	}}
	listener := &scripted{actions: []Action{Listen(), Listen(), Listen()}}
	e := mustEngine(t, in, []Protocol{sender, listener}, Config{Workers: 1})
	e.Run(3)
	want := 2 * pw
	if got := e.Stats().Energy; got != want {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestEnergyZeroWithoutTransmissions(t *testing.T) {
	in := lineInstance(t, 0, 3)
	a := &scripted{}
	b := &scripted{}
	e := mustEngine(t, in, []Protocol{a, b}, Config{Workers: 1})
	e.Run(4)
	if got := e.Stats().Energy; got != 0 {
		t.Errorf("Energy = %v, want 0", got)
	}
}
