package sinr

import (
	"math"
	"sync"
	"sync/atomic"

	"sinrconn/internal/geom"
	"sinrconn/internal/phys"
)

// The plain physical-layer data types live in internal/phys — the leaf
// package the naive oracle is allowed to share with this kernel. They are
// aliased here so every caller keeps saying sinr.Params / sinr.Link /
// sinr.Tx; see internal/phys for the definitions and the purity rationale.

// Params holds the physical-layer constants of the SINR model.
//
//	Reception (Eqn 1):  P_u/d(u,v)^α  ≥  β·(N + Σ_w P_w/d(w,v)^α)
type Params = phys.Params

// Link is a directed communication request from node From (the sender) to
// node To (the receiver), identified by point indices into an Instance.
type Link = phys.Link

// Tx is one concurrent transmission: node Sender transmitting with the given
// power. Slices of Tx describe the sender set S of Eqn 1.
type Tx = phys.Tx

// DefaultParams returns the physical constants used throughout the
// experiments: α = 3 (typical outdoor path loss), β = 1.5, N = 1, ε = 0.1.
func DefaultParams() Params { return phys.DefaultParams() }

// ErrMismatchedLengths reports a links/powers length mismatch in a bulk API.
var ErrMismatchedLengths = phys.ErrMismatchedLengths

// ErrDuplicateSender reports a link set with two links sharing a sender in
// a far-field bulk API, which the tiled aggregation cannot express (the
// exact APIs sum duplicates fine).
var ErrDuplicateSender = phys.ErrDuplicateSender

// Instance binds a point set to physical parameters. All SINR computations
// are methods on Instance so that distances are computed in one place. The
// physics kernel (kernel.go) hangs off the instance: a lazily built gain
// table caching d(u,v)^{-α} for every pair, shared by every layer that
// computes interference.
type Instance struct {
	pts    []geom.Point
	params Params

	deltaOnce sync.Once
	delta     float64

	gainOnce  sync.Once
	gain      []float64   // row-major n×n, entry v·n+u = d(u,v)^{-α}; nil if over budget
	gainReady atomic.Bool // set once gainOnce has resolved (built, seeded, or skipped)

	ffMu sync.Mutex
	ff   map[float64]*FarField // flat far-field plans keyed by requested ε (farfield.go)
	qt   map[float64]*QuadTree // hierarchical plans keyed by requested ε (quadtree.go)
}

// NewInstance creates an instance over pts. The points are not copied; the
// caller must not mutate them afterwards. Delta (the max/min distance ratio)
// is computed lazily on first use.
func NewInstance(pts []geom.Point, params Params) (*Instance, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Instance{pts: pts, params: params}, nil
}

// MustInstance is NewInstance for static inputs known to be valid.
func MustInstance(pts []geom.Point, params Params) *Instance {
	in, err := NewInstance(pts, params)
	if err != nil {
		panic(err)
	}
	return in
}

// Len returns the number of nodes.
func (in *Instance) Len() int { return len(in.pts) }

// Params returns the physical parameters.
func (in *Instance) Params() Params { return in.params }

// Point returns the location of node i.
func (in *Instance) Point(i int) geom.Point { return in.pts[i] }

// Points returns the underlying point slice (not a copy; read-only by
// convention).
func (in *Instance) Points() []geom.Point { return in.pts }

// Dist returns the distance between nodes u and v.
func (in *Instance) Dist(u, v int) float64 { return in.pts[u].Dist(in.pts[v]) }

// Length returns the length d(From, To) of link l.
func (in *Instance) Length(l Link) float64 { return in.Dist(l.From, l.To) }

// Delta returns the max/min pairwise distance ratio Δ of the instance,
// computed once and cached. Safe for concurrent use: instances are shared
// read-only across a session's concurrent runs, so the lazy fill is
// guarded by a sync.Once.
func (in *Instance) Delta() float64 {
	in.deltaOnce.Do(func() { in.delta = geom.Delta(in.pts) })
	return in.delta
}

// Upsilon returns the paper's Υ = O(log log Δ + log n) measured concretely as
// max(1, log₂log₂Δ) + log₂n. It governs the cost of oblivious (mean) power
// relative to arbitrary power.
func (in *Instance) Upsilon() float64 {
	return Upsilon(in.Len(), in.Delta())
}

// Upsilon computes log₂log₂(Δ) + log₂(n), clamped below at 1. It is exposed
// as a function so experiment code can normalize against it without an
// Instance.
func Upsilon(n int, delta float64) float64 {
	loglogD := 0.0
	if delta > 2 {
		loglogD = math.Log2(math.Log2(delta))
	}
	u := loglogD + math.Log2(math.Max(2, float64(n)))
	if u < 1 {
		return 1
	}
	return u
}
