package sinrconn

// The scenario-matrix suite: the cross-product (generator × α × pipeline)
// run end to end, with every constructed bi-tree verified twice — once by
// the optimized validators (Tree.Verify) and once by the brute-force
// oracle battery (internal/oracle) — so the validators themselves are
// differentially tested on every cell. Runs a reduced matrix under -short
// and the full product (at larger n) in soak mode.
//
// Also home of the structure-level metamorphic invariant: growing a
// network by join-then-repair must be equivalent to rebuilding on the
// union point set — same spanned node set, same verdict from the full
// validator battery on both structures (Type 1).

import (
	"math/rand"
	"testing"

	"sinrconn/internal/oracle"
	"sinrconn/internal/workload"
)

// matrixAlphas matches the differential suite: even/odd integer fast
// paths, the half-integer path, and the free-space boundary α = 2.
var matrixAlphas = []float64{2, 2.5, 3, 4}

type pipelineSpec struct {
	name string
	// ordered reports whether the pipeline guarantees the aggregation
	// ordering property (RescheduleMeanPower documents that it does not).
	ordered bool
	build   func([]Point, Options) (*Result, error)
}

func matrixPipelines() []pipelineSpec {
	return []pipelineSpec{
		{"init-uniform", true, BuildInitialBiTree},
		{"reschedule-mean", false, RescheduleMeanPower},
		{"tvc-mean", true, BuildBiTreeMeanPower},
		{"tvc-arbitrary", true, BuildBiTreeArbitraryPower},
	}
}

// facadePoints runs a workload generator and converts to facade points.
func facadePoints(spec workload.Spec, seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	g := spec.Gen(rng, n)
	pts := make([]Point, len(g))
	for i, p := range g {
		pts[i] = Point{X: p.X, Y: p.Y}
	}
	return pts
}

// verifyCell runs both validator stacks on one matrix cell's result.
func verifyCell(t *testing.T, res *Result, ordered bool) {
	t.Helper()
	inner, inst := res.Tree.inner, res.Tree.inst
	if ordered {
		if err := res.Tree.Verify(); err != nil {
			t.Fatalf("optimized validators: %v", err)
		}
		if err := oracle.ValidateBiTree(inst.Points(), inst.Params(), inner.Root, inner.Nodes, inner.Up); err != nil {
			t.Fatalf("oracle validators: %v", err)
		}
		return
	}
	// Rescheduled trees keep structure and feasibility but may violate the
	// aggregation ordering; check everything else on both stacks.
	if err := inner.Validate(); err != nil {
		t.Fatalf("optimized structure validator: %v", err)
	}
	if err := inner.ValidatePerSlotFeasible(inst); err != nil {
		t.Fatalf("optimized feasibility validator: %v", err)
	}
	if err := oracle.ValidateTree(inner.Root, inner.Nodes, inner.Up); err != nil {
		t.Fatalf("oracle structure validator: %v", err)
	}
	if !oracle.StronglyConnected(inner.Nodes, inner.Up) {
		t.Fatal("oracle: not strongly connected")
	}
	if err := oracle.ValidateSchedule(inst.Points(), inst.Params(), inner.Up); err != nil {
		t.Fatalf("oracle feasibility validator: %v", err)
	}
}

// TestScenarioMatrix sweeps the cross-product. Under -short each generator
// runs every pipeline at the default α plus one rotating non-default α, at
// small n; without -short the full generator × α × pipeline product runs
// at larger n.
func TestScenarioMatrix(t *testing.T) {
	specs := workload.Matrix()
	pipes := matrixPipelines()
	n := 40
	if testing.Short() {
		n = 22
	}
	for si, spec := range specs {
		for ai, alpha := range matrixAlphas {
			if testing.Short() && alpha != 3 && ai != si%len(matrixAlphas) {
				continue
			}
			for pi, pipe := range pipes {
				spec, alpha, pipe := spec, alpha, pipe
				seed := int64(1000 + 100*si + 10*ai + pi)
				t.Run(spec.Name+"/"+floatName(alpha)+"/"+pipe.name, func(t *testing.T) {
					// The construction protocols are randomized and may
					// (rarely, legitimately) fail to converge within their
					// round bounds on a given seed; that surfaces as a clean
					// error, and the cell retries with a fresh protocol seed
					// on the SAME point set — so an instance-specific
					// deterministic pipeline bug fails every attempt.
					// Validator failures below are never retried.
					pts := facadePoints(spec, seed, n)
					var res *Result
					var err error
					for attempt := int64(0); attempt < 3; attempt++ {
						res, err = pipe.build(pts, Options{
							Seed:   seed + attempt,
							Params: PhysParams{Alpha: alpha},
						})
						if err == nil {
							break
						}
					}
					if err != nil {
						t.Fatalf("pipeline failed on 3 seeds: %v", err)
					}
					if res.Tree.NumNodes != n {
						t.Fatalf("tree spans %d of %d nodes", res.Tree.NumNodes, n)
					}
					verifyCell(t, res, pipe.ordered)
				})
			}
		}
	}
}

func floatName(f float64) string {
	switch f {
	case 2:
		return "alpha2"
	case 2.5:
		return "alpha2.5"
	case 4:
		return "alpha4"
	}
	return "alpha3"
}

// TestMetamorphicJoinThenRepairEqualsRebuild grows a network two ways —
// build on A, join B, then fail and repair a member; versus rebuild from
// scratch on the surviving union — and requires both structures to span
// exactly the same node set and pass the identical full validator battery
// (optimized and oracle). The trees themselves may differ (the protocols
// are randomized); the paper's guarantees may not.
func TestMetamorphicJoinThenRepairEqualsRebuild(t *testing.T) {
	for _, seed := range []int64{42, 123, 456} {
		base := uniformPoints(seed, 28)
		var annulus workload.Spec
		for _, s := range workload.Matrix() {
			if s.Name == "annulus" {
				annulus = s
			}
		}
		if annulus.Gen == nil {
			t.Fatal("annulus spec missing from matrix")
		}
		extra := facadePoints(annulus, seed+1, 8)
		// Shift the annulus batch clear of the base square so the union
		// keeps min distance ≥ 1.
		for i := range extra {
			extra[i].X += 300
		}

		grown, err := BuildInitialBiTree(base, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		grown, err = grown.JoinPoints(extra, Options{Seed: seed + 2})
		if err != nil {
			t.Fatalf("seed %d: join: %v", seed, err)
		}
		victim := 0
		if victim == grown.Tree.Root {
			victim = 1
		}
		grown, err = grown.RepairFailures([]int{victim}, Options{Seed: seed + 3})
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}

		// Rebuild from scratch on the same surviving union.
		var union []Point
		for i, p := range base {
			if i != victim {
				union = append(union, p)
			}
		}
		union = append(union, extra...)
		rebuilt, err := BuildInitialBiTree(union, Options{Seed: seed + 4})
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}

		if got, want := grown.Tree.NumNodes, len(union); got != want {
			t.Fatalf("seed %d: grown tree spans %d nodes, union has %d", seed, got, want)
		}
		if got, want := grown.Tree.NumNodes, rebuilt.Tree.NumNodes; got != want {
			t.Fatalf("seed %d: grown spans %d nodes, rebuilt %d", seed, got, want)
		}
		for _, res := range []*Result{grown, rebuilt} {
			verifyCell(t, res, true)
		}
	}
}
