package tree

import (
	"fmt"
	"sort"

	"sinrconn/internal/sinr"
)

// Restamp recomputes the slot stamps of the aggregation links from scratch,
// producing a schedule that (a) satisfies the aggregation ordering (every
// link after all links of its sender's subtree), (b) keeps every slot group
// SINR-feasible under the powers already stamped on the links, and (c) is
// greedily short. It is the repair tool used after tree surgery (node
// joins, failure recovery) invalidates the construction-time stamps.
//
// The algorithm processes links in topological order (subtree height
// ascending) and first-fits each into the earliest slot that is strictly
// after every child link's slot and whose group stays feasible with the
// link added. Node-reuse within a slot is rejected (a node cannot
// participate in two links of one feasible slot).
func (t *BiTree) Restamp(in *sinr.Instance) (int, error) {
	if len(t.Up) == 0 {
		return 0, nil
	}
	children := t.Children()
	// Subtree height of each node (leaves = 0), iteratively.
	height := make(map[int]int, len(t.Nodes))
	var calc func(v int) int
	calc = func(v int) int {
		if h, ok := height[v]; ok {
			return h
		}
		h := 0
		for _, c := range children[v] {
			if ch := calc(c) + 1; ch > h {
				h = ch
			}
		}
		height[v] = h
		return h
	}
	for _, v := range t.Nodes {
		calc(v)
	}

	// Order links by the height of their sender's subtree; ties by length
	// (shorter first — easier to pack).
	idx := make([]int, len(t.Up))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ha, hb := height[t.Up[idx[a]].L.From], height[t.Up[idx[b]].L.From]
		if ha != hb {
			return ha < hb
		}
		return in.Length(t.Up[idx[a]].L) < in.Length(t.Up[idx[b]].L)
	})

	type slotGroup struct {
		links  []sinr.Link
		powers []float64
		busy   map[int]bool
	}
	var slots []slotGroup
	outSlot := make(map[int]int, len(t.Up)) // sender → assigned slot (1-based)

	for _, i := range idx {
		tl := t.Up[i]
		// Earliest admissible slot: strictly after every child link.
		floor := 0
		for _, c := range children[tl.L.From] {
			if s, ok := outSlot[c]; ok && s > floor {
				floor = s
			}
		}
		placed := false
		for s := floor; s < len(slots); s++ {
			g := &slots[s]
			if g.busy[tl.L.From] || g.busy[tl.L.To] {
				continue
			}
			candLinks := append(append([]sinr.Link(nil), g.links...), tl.L)
			candPowers := append(append([]float64(nil), g.powers...), tl.Power)
			if ok, err := in.SINRFeasible(candLinks, candPowers); err == nil && ok {
				g.links = candLinks
				g.powers = candPowers
				g.busy[tl.L.From] = true
				g.busy[tl.L.To] = true
				t.Up[i].Slot = s + 1
				outSlot[tl.L.From] = s + 1
				placed = true
				break
			}
		}
		if !placed {
			// The link must at least be feasible alone at its power.
			if ok, err := in.SINRFeasible([]sinr.Link{tl.L}, []float64{tl.Power}); err != nil || !ok {
				return 0, fmt.Errorf("tree: link %v infeasible alone at power %v", tl.L, tl.Power)
			}
			slots = append(slots, slotGroup{
				links:  []sinr.Link{tl.L},
				powers: []float64{tl.Power},
				busy:   map[int]bool{tl.L.From: true, tl.L.To: true},
			})
			t.Up[i].Slot = len(slots)
			outSlot[tl.L.From] = len(slots)
		}
	}
	return len(slots), nil
}
