package core

// White-box state-machine tests: drive the per-node protocols through
// hand-crafted slot/inbox sequences and verify each transition branch.

import (
	"math/rand"
	"testing"

	"sinrconn/internal/sim"
	"sinrconn/internal/tree"
)

func newTestInitNode(id int) *initNode {
	cfg := &InitConfig{}
	cfg.defaults()
	cfg.BroadcastProb = 1 // deterministic: always broadcast when active
	return &initNode{
		id:            id,
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(1)),
		participating: true,
		active:        true,
		parent:        -1,
		broadcastPair: -1,
		spec:          roundSpec{lo: 1, hi: 4, power: 100},
	}
}

func TestInitNodeNonParticipantIdles(t *testing.T) {
	nd := newTestInitNode(0)
	nd.participating = false
	for slot := 0; slot < 4; slot++ {
		if a := nd.Step(slot, nil); a.Kind != sim.ActionIdle {
			t.Fatalf("slot %d: non-participant acted: %v", slot, a.Kind)
		}
	}
}

func TestInitNodeBroadcastsWhenForced(t *testing.T) {
	nd := newTestInitNode(3)
	a := nd.Step(0, nil)
	if a.Kind != sim.ActionTransmit || a.Msg.Kind != sim.KindBroadcast || a.Msg.From != 3 {
		t.Fatalf("expected broadcast, got %+v", a)
	}
	if a.Power != 100 {
		t.Errorf("power = %v", a.Power)
	}
	if nd.broadcastPair != 0 {
		t.Errorf("broadcastPair = %d", nd.broadcastPair)
	}
	// During the ack slot the broadcaster listens.
	if a := nd.Step(1, nil); a.Kind != sim.ActionListen {
		t.Fatalf("broadcaster should listen for acks, got %v", a.Kind)
	}
}

func TestInitNodeConsumesAckAndDeactivates(t *testing.T) {
	nd := newTestInitNode(3)
	nd.Step(0, nil) // broadcast at pair 0
	nd.Step(1, nil) // listen
	ack := sim.Delivery{Msg: sim.Message{Kind: sim.KindAck, From: 9, To: 3}}
	a := nd.Step(2, []sim.Delivery{ack})
	if nd.active {
		t.Fatal("node still active after ack")
	}
	if nd.parent != 9 {
		t.Errorf("parent = %d", nd.parent)
	}
	if nd.outLink == nil || nd.outLink.L.To != 9 || nd.outLink.Slot != 0 {
		t.Errorf("outLink = %+v", nd.outLink)
	}
	if a.Kind != sim.ActionIdle {
		t.Errorf("deactivated node acted: %v", a.Kind)
	}
}

func TestInitNodeIgnoresAckForOthers(t *testing.T) {
	nd := newTestInitNode(3)
	nd.Step(0, nil)
	nd.Step(1, nil)
	ack := sim.Delivery{Msg: sim.Message{Kind: sim.KindAck, From: 9, To: 7}}
	nd.Step(2, []sim.Delivery{ack})
	if !nd.active {
		t.Fatal("node deactivated by someone else's ack")
	}
}

func TestInitNodeAcksInGateBroadcast(t *testing.T) {
	nd := newTestInitNode(5)
	nd.cfg.BroadcastProb = 0 // always a listener
	nd.cfg.AckProb = 1
	nd.Step(0, nil) // listener in data slot
	bc := sim.Delivery{
		Msg:  sim.Message{Kind: sim.KindBroadcast, From: 2},
		Dist: 2.5, // inside gate [1, 4)
	}
	a := nd.Step(1, []sim.Delivery{bc})
	if a.Kind != sim.ActionTransmit || a.Msg.Kind != sim.KindAck || a.Msg.To != 2 {
		t.Fatalf("expected ack to 2, got %+v", a)
	}
	if len(nd.tentative) != 1 || nd.tentative[0] != 2 {
		t.Errorf("tentative children = %v", nd.tentative)
	}
}

func TestInitNodeRejectsOutOfGateBroadcast(t *testing.T) {
	nd := newTestInitNode(5)
	nd.cfg.BroadcastProb = 0
	nd.cfg.AckProb = 1
	nd.Step(0, nil)
	for _, dist := range []float64{0.5, 4.0, 9.9} { // below lo / at-above hi
		bc := sim.Delivery{Msg: sim.Message{Kind: sim.KindBroadcast, From: 2}, Dist: dist}
		if a := nd.Step(1, []sim.Delivery{bc}); a.Kind != sim.ActionListen {
			t.Fatalf("dist %v: out-of-gate broadcast acknowledged", dist)
		}
		nd.Step(0, nil) // back to a data slot
	}
}

func TestInitNodeIgnoresNonBroadcastInAckSlot(t *testing.T) {
	nd := newTestInitNode(5)
	nd.cfg.BroadcastProb = 0
	nd.Step(0, nil)
	data := sim.Delivery{Msg: sim.Message{Kind: sim.KindData, From: 2}, Dist: 2}
	if a := nd.Step(1, []sim.Delivery{data}); a.Kind != sim.ActionListen {
		t.Fatalf("acked a non-broadcast: %+v", a)
	}
}

func newTestJoinNode(id int, role joinRole) *joinNode {
	cfg := &InitConfig{}
	cfg.defaults()
	cfg.BroadcastProb = 1
	cfg.AckProb = 1
	return &joinNode{
		id:            id,
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(2)),
		role:          role,
		broadcastPair: -1,
		decayLevels:   0, // level 0 always → ack probability 1
		spec:          roundSpec{lo: 0, hi: 100, power: 50},
	}
}

func TestJoinNodeIdleRole(t *testing.T) {
	nd := newTestJoinNode(1, joinIdle)
	for slot := 0; slot < 4; slot++ {
		if a := nd.Step(slot, nil); a.Kind != sim.ActionIdle {
			t.Fatalf("idle-role node acted at slot %d", slot)
		}
	}
}

func TestJoinNodeJoinerAttaches(t *testing.T) {
	nd := newTestJoinNode(7, joinJoiner)
	a := nd.Step(0, nil)
	if a.Kind != sim.ActionTransmit || a.Msg.Kind != sim.KindBroadcast {
		t.Fatalf("joiner did not broadcast: %+v", a)
	}
	nd.Step(1, nil) // waiting for ack
	ack := sim.Delivery{Msg: sim.Message{Kind: sim.KindAck, From: 4, To: 7}}
	nd.Step(2, []sim.Delivery{ack})
	if nd.role != joinMember {
		t.Fatal("joiner did not become member")
	}
	if nd.outLink == nil || nd.outLink.L != (outLinkOf(7, 4)) || nd.outLink.Power != 50 {
		t.Errorf("outLink = %+v", nd.outLink)
	}
}

func outLinkOf(from, to int) (l struct{ From, To int }) {
	l.From = from
	l.To = to
	return l
}

func TestJoinNodeMemberAcks(t *testing.T) {
	nd := newTestJoinNode(2, joinMember)
	if a := nd.Step(0, nil); a.Kind != sim.ActionListen {
		t.Fatalf("member should listen in data slot: %v", a.Kind)
	}
	bc := sim.Delivery{Msg: sim.Message{Kind: sim.KindBroadcast, From: 9}, Dist: 10, Slot: 0}
	a := nd.Step(1, []sim.Delivery{bc})
	if a.Kind != sim.ActionTransmit || a.Msg.Kind != sim.KindAck || a.Msg.To != 9 {
		t.Fatalf("member did not ack: %+v", a)
	}
}

func TestJoinNodeMemberRespectsGate(t *testing.T) {
	nd := newTestJoinNode(2, joinMember)
	nd.spec = roundSpec{lo: 4, hi: 8, power: 50}
	nd.Step(0, nil)
	bc := sim.Delivery{Msg: sim.Message{Kind: sim.KindBroadcast, From: 9}, Dist: 2, Slot: 0}
	if a := nd.Step(1, []sim.Delivery{bc}); a.Kind != sim.ActionListen {
		t.Fatal("member acked an out-of-gate broadcast")
	}
}

func TestAggNodeFoldsAndTransmits(t *testing.T) {
	nd := &aggNode{id: 1, member: true, parent: 0, txSlot: 1, power: 10, value: 5, fold: SumAgg}
	if a := nd.Step(0, nil); a.Kind != sim.ActionListen {
		t.Fatalf("slot 0 should listen: %v", a.Kind)
	}
	in := []sim.Delivery{
		{Msg: sim.Message{Kind: sim.KindData, To: 1, From: 3, Payload: 7}},
		{Msg: sim.Message{Kind: sim.KindData, To: 2, From: 4, Payload: 100}}, // not ours
	}
	a := nd.Step(1, in)
	if nd.value != 12 {
		t.Errorf("folded value = %d, want 12", nd.value)
	}
	if a.Kind != sim.ActionTransmit || a.Msg.Payload != 12 || a.Msg.To != 0 {
		t.Fatalf("transmit action = %+v", a)
	}
	// Non-member idles.
	out := &aggNode{id: 9, member: false}
	if a := out.Step(0, nil); a.Kind != sim.ActionIdle {
		t.Fatal("non-member acted")
	}
}

func TestRoundSpecPowerStampedOnLink(t *testing.T) {
	// Regression guard: the power recorded on a formed link is the power
	// of the round in which the broadcast happened, not a later round's.
	nd := newTestInitNode(3)
	nd.spec = roundSpec{lo: 1, hi: 4, power: 111}
	nd.Step(0, nil)
	nd.spec = roundSpec{lo: 4, hi: 8, power: 999} // round advances mid-wait
	nd.Step(1, nil)
	ack := sim.Delivery{Msg: sim.Message{Kind: sim.KindAck, From: 9, To: 3}}
	nd.Step(2, []sim.Delivery{ack})
	if nd.outLink.Power != 111 {
		t.Errorf("stamped power = %v, want the broadcast round's 111", nd.outLink.Power)
	}
	var _ tree.TimedLink = *nd.outLink
}
