// Package faults is a seeded, replay-identical fault-injection
// framework for the serving stack and churn engine (DESIGN.md §13).
//
// A Plan is a deterministic schedule over named injection Sites: the
// k-th visit to a site fires if and only if a splitmix64 hash of
// (seed, site, k) falls under the site's configured rate. The decision
// is a pure function of the plan's Spec and the per-site visit ordinal,
// so two runs that visit each site in the same order observe exactly
// the same fault sequence — no clock reads, no global rand. The
// package passes the repo's own determinism and ctxdiscipline
// analyzers (DESIGN.md §11).
//
// Production code paths hold the no-op Disabled injector (or a nil
// interface, which every site treats as Disabled); tests and the
// `served -chaos` flag install a *Plan per Server / per Network.
package faults
