package sinr

// The physics kernel: the shared fast path every SINR computation in this
// repository funnels through. Three layers, from cheapest to most general:
//
//  1. PowAlpha / PowAlphaSq — path loss d^α without math.Pow when α (or 2α)
//     is a small integer. The default α = 3 costs three multiplies and one
//     hardware sqrt from a *squared* distance, skipping both math.Pow and
//     the math.Hypot in geom.Point.Dist.
//  2. The lazily built O(n²) gain table caching d(u,v)^{-α} for every node
//     pair, so per-slot channel resolution and affectance sums are table
//     lookups. Construction is parallel and happens at most once per
//     Instance (sync.Once).
//  3. A memory bound: instances whose table would exceed maxGainTableBytes
//     skip the cache and fall back to the layer-1 fast path on the fly —
//     bit-for-bit identical values, just recomputed.
//
// Numerical contract: kernel values agree with the naive
// math.Hypot+math.Pow formulation to within a few ulps (the fast integer
// power and the reciprocal each round once more than math.Pow). The
// golden-equivalence test in kernel_test.go pins this down; DESIGN.md
// documents the tolerance.

import (
	"runtime"
	"sync"

	"sinrconn/internal/phys"
)

// maxGainTableBytes bounds the memory the per-instance gain table may use
// (256 MiB ≈ n = 5792). Larger instances fall back to on-the-fly fast path
// loss, which computes identical values.
const maxGainTableBytes = 256 << 20

// PowAlpha returns d^alpha, avoiding math.Pow when alpha or 2·alpha is a
// small integer (covering the model's α and the mean-power exponent α/2).
// The implementation lives in internal/phys (the leaf data package); this
// wrapper inlines, so kernel call sites pay nothing for the indirection.
func PowAlpha(d, alpha float64) float64 { return phys.PowAlpha(d, alpha) }

// PowAlphaSq returns d^alpha given the *squared* distance d² — the form the
// kernel prefers because geom.Point.DistSq needs no square root. For integer
// α the cost is at most one sqrt (odd α) or none at all (even α).
func PowAlphaSq(d2, alpha float64) float64 { return phys.PowAlphaSq(d2, alpha) }

// DistSq returns the squared distance between nodes u and v.
func (in *Instance) DistSq(u, v int) float64 { return in.pts[u].DistSq(in.pts[v]) }

// DistAlpha returns d(u,v)^α via the fast path-loss kernel.
func (in *Instance) DistAlpha(u, v int) float64 {
	return PowAlphaSq(in.pts[u].DistSq(in.pts[v]), in.params.Alpha)
}

// LengthAlpha returns Length(l)^α — the per-link path loss every c(u,v) and
// signal computation needs. Cheap enough (≤ 1 sqrt + 3 multiplies at the
// default α) that no per-link map is needed; together with the gain table it
// is the memoization layer for link constants.
func (in *Instance) LengthAlpha(l Link) float64 { return in.DistAlpha(l.From, l.To) }

// buildGainTable fills in.gain with d(u,v)^{-α} in row-major order
// (entry v·n+u, i.e. row v holds the gains from every sender u to receiver
// v; the matrix is symmetric). Diagonal and duplicate-point entries are +Inf
// — a zero-distance "link" saturates any receiver — and callers treat +Inf
// as the saturation sentinel. Rows are built in parallel.
func (in *Instance) buildGainTable() {
	n := len(in.pts)
	if n == 0 || uint64(n)*uint64(n)*8 > maxGainTableBytes {
		return
	}
	g := make([]float64, n*n)
	alpha := in.params.Alpha
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				pv := in.pts[v]
				row := g[v*n : (v+1)*n]
				for u := range row {
					row[u] = 1 / PowAlphaSq(pv.DistSq(in.pts[u]), alpha)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	in.gain = g
}

// markGainResolved records that gainOnce has run (the atomic publishes the
// preceding gain write to non-Do readers of gainTableIfBuilt).
func (in *Instance) markGainResolved() { in.gainReady.Store(true) }

// GainTable returns the n×n gain table (row-major, entry v·n+u =
// d(u,v)^{-α}), building it on first use. It returns nil when the table
// would exceed the memory budget; callers must then fall back to Gain,
// which computes identical values on the fly.
//
// The one-time build parallelizes across runtime.NumCPU() regardless of any
// consumer-level worker cap (e.g. sim.Config.Workers): the table is shared
// per-Instance state, not part of the simulation, and the burst is bounded
// by maxGainTableBytes.
func (in *Instance) GainTable() []float64 {
	in.gainOnce.Do(func() {
		in.buildGainTable()
		in.markGainResolved()
	})
	return in.gain
}

// gainTableIfBuilt returns the gain table only when it has already been
// resolved (built, Extend-seeded, or skipped for budget), never forcing
// the O(n²) build — the peek Extend uses so far-field-only sessions don't
// pay for a table no engine will read.
func (in *Instance) gainTableIfBuilt() ([]float64, bool) {
	if !in.gainReady.Load() {
		return nil, false
	}
	return in.gain, true
}

// GainRow returns the gain row of receiver v (gains from every sender), or
// nil when the table is disabled by the memory bound.
func (in *Instance) GainRow(v int) []float64 {
	if g := in.GainTable(); g != nil {
		n := len(in.pts)
		return g[v*n : (v+1)*n]
	}
	return nil
}

// Gain returns d(u,v)^{-α}: the channel gain from sender u to receiver v.
// +Inf marks zero distance (u == v or duplicate points).
func (in *Instance) Gain(u, v int) float64 {
	if g := in.GainTable(); g != nil {
		return g[v*len(in.pts)+u]
	}
	return 1 / PowAlphaSq(in.pts[u].DistSq(in.pts[v]), in.params.Alpha)
}

// disableGainTableForTest forces the tableless fallback so tests can assert
// the two paths agree bit-for-bit.
func (in *Instance) disableGainTableForTest() {
	in.gainOnce.Do(func() {})
	in.gain = nil
	in.markGainResolved()
}
