package sparsity

import (
	"math"
	"sort"

	"sinrconn/internal/sinr"
)

// Measure returns the measured sparsity ψ of the link set over the
// canonical family of balls: for every link endpoint c and every radius
// ρ = len/8 for a link length present in the set, it counts the links of
// length ≥ 8ρ with an endpoint within distance ρ of c, and returns the
// maximum count.
//
// Restricting to endpoint-centered balls loses at most a constant factor
// versus the supremum over all balls (a ball containing k endpoints is
// contained in the ball of twice the radius centered at any one of them),
// which is exactly the slack the paper's own union-bounding argument uses
// ("by careful selection, there are only polynomially many relevant
// balls").
func Measure(in *sinr.Instance, links []sinr.Link) int {
	if len(links) == 0 {
		return 0
	}
	type ep struct {
		node int
		len  float64
		link int
	}
	// Collect endpoints with their link lengths.
	eps := make([]ep, 0, 2*len(links))
	lengths := make([]float64, len(links))
	for i, l := range links {
		lengths[i] = in.Length(l)
		eps = append(eps, ep{node: l.From, len: lengths[i], link: i})
		eps = append(eps, ep{node: l.To, len: lengths[i], link: i})
	}
	// Candidate radii: len/8 for each distinct link length.
	radii := make([]float64, 0, len(links))
	seen := map[float64]struct{}{}
	for _, ln := range lengths {
		r := ln / 8
		if _, ok := seen[r]; !ok && r > 0 {
			seen[r] = struct{}{}
			radii = append(radii, r)
		}
	}
	sort.Float64s(radii)

	psi := 0
	for _, e := range eps {
		c := in.Point(e.node)
		for _, rho := range radii {
			count := 0
			counted := make(map[int]struct{})
			for i, l := range links {
				if lengths[i] < 8*rho-1e-9 {
					continue
				}
				if _, dup := counted[i]; dup {
					continue
				}
				if in.Point(l.From).Dist(c) <= rho+1e-9 || in.Point(l.To).Dist(c) <= rho+1e-9 {
					counted[i] = struct{}{}
					count++
				}
			}
			if count > psi {
				psi = count
			}
		}
	}
	return psi
}

// MeasureAtScales is a faster variant of Measure restricted to power-of-two
// radii, suitable for large link sets in benchmarks. The loss against
// Measure is at most one doubling (factor ≤ 2 in the radius grid).
func MeasureAtScales(in *sinr.Instance, links []sinr.Link) int {
	if len(links) == 0 {
		return 0
	}
	maxLen := 0.0
	lengths := make([]float64, len(links))
	for i, l := range links {
		lengths[i] = in.Length(l)
		if lengths[i] > maxLen {
			maxLen = lengths[i]
		}
	}
	psi := 0
	for rho := maxLen / 8; rho >= 1.0/16; rho /= 2 {
		// For this radius, the qualifying links are those of length ≥ 8ρ.
		var qual []int
		for i := range links {
			if lengths[i] >= 8*rho-1e-9 {
				qual = append(qual, i)
			}
		}
		if len(qual) <= psi {
			continue // cannot beat current max
		}
		for _, e := range qual {
			for _, center := range []int{links[e].From, links[e].To} {
				c := in.Point(center)
				count := 0
				for _, i := range qual {
					l := links[i]
					if in.Point(l.From).Dist(c) <= rho+1e-9 || in.Point(l.To).Dist(c) <= rho+1e-9 {
						count++
					}
				}
				if count > psi {
					psi = count
				}
			}
		}
	}
	return psi
}

// IsIndependent reports whether links a and b are q-independent:
// d(x, y′)·d(y, x′) ≥ q²·d(x,y)·d(x′,y′) for a = (x,y), b = (x′,y′)
// (Appendix A). Independence is the pairwise-separation notion that, per
// length class, implies feasibility.
func IsIndependent(in *sinr.Instance, a, b sinr.Link, q float64) bool {
	dxyP := in.Dist(a.From, b.To)
	dyxP := in.Dist(a.To, b.From)
	return dxyP*dyxP >= q*q*in.Length(a)*in.Length(b)
}

// IndependentPartition greedily partitions links into q-independent classes
// using the ascending-length first-fit coloring of Lemma 23: sort by
// length; each link joins the first class where it is q-independent of all
// previously placed (shorter) links, opening a new class if none fits. For
// O(1)-sparse inputs the number of classes is O(1).
func IndependentPartition(in *sinr.Instance, links []sinr.Link, q float64) [][]sinr.Link {
	order := make([]int, len(links))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return in.Length(links[order[i]]) < in.Length(links[order[j]])
	})
	var classes [][]sinr.Link
	for _, idx := range order {
		l := links[idx]
		placed := false
		for ci := range classes {
			ok := true
			for _, o := range classes[ci] {
				if !IsIndependent(in, o, l, q) {
					ok = false
					break
				}
			}
			if ok {
				classes[ci] = append(classes[ci], l)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []sinr.Link{l})
		}
	}
	return classes
}

// LengthClasses buckets links into doubling length classes, keyed by class
// index r (length ∈ [2^(r-1), 2^r)).
func LengthClasses(in *sinr.Instance, links []sinr.Link) map[int][]sinr.Link {
	out := make(map[int][]sinr.Link)
	for _, l := range links {
		r := classOf(in.Length(l))
		out[r] = append(out[r], l)
	}
	return out
}

func classOf(d float64) int {
	if d < 1 {
		return 1
	}
	return int(math.Floor(math.Log2(d))) + 1
}
