package churn

import (
	"testing"
	"time"
)

// TestArrivalsDeterministic pins the trace discipline: a (Seed, Rate, Mix)
// triple names one gap sequence, bit for bit.
func TestArrivalsDeterministic(t *testing.T) {
	for _, mix := range []ArrivalMix{MixPoisson, MixBursty} {
		a1, err := NewArrivals(ArrivalSpec{Seed: 42, Rate: 100, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := NewArrivals(ArrivalSpec{Seed: 42, Rate: 100, Mix: mix})
		for i := 0; i < 1000; i++ {
			if g1, g2 := a1.Next(), a2.Next(); g1 != g2 {
				t.Fatalf("%v: gap %d diverges: %v vs %v", mix, i, g1, g2)
			}
		}
		b, _ := NewArrivals(ArrivalSpec{Seed: 43, Rate: 100, Mix: mix})
		same := true
		a3, _ := NewArrivals(ArrivalSpec{Seed: 42, Rate: 100, Mix: mix})
		for i := 0; i < 32; i++ {
			if a3.Next() != b.Next() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical traces", mix)
		}
	}
}

// TestArrivalsMeanRate checks both mixes deliver the configured long-run
// rate within sampling tolerance — the bursty idle-gap compensation must
// not distort throughput.
func TestArrivalsMeanRate(t *testing.T) {
	const rate, draws = 50.0, 20000
	for _, mix := range []ArrivalMix{MixPoisson, MixBursty} {
		a, err := NewArrivals(ArrivalSpec{Seed: 7, Rate: rate, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for i := 0; i < draws; i++ {
			total += a.Next()
		}
		got := draws / total.Seconds()
		if got < 0.85*rate || got > 1.15*rate {
			t.Fatalf("%v: measured rate %.1f/s, want %.0f/s ±15%%", mix, got, rate)
		}
	}
}

// TestArrivalsBurstiness verifies MixBursty actually clusters: its gap
// distribution must be far more dispersed than Poisson at the same rate
// (coefficient of variation well above 1).
func TestArrivalsBurstiness(t *testing.T) {
	const rate, draws = 50.0, 20000
	cv := func(mix ArrivalMix) float64 {
		a, err := NewArrivals(ArrivalSpec{Seed: 9, Rate: rate, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			g := a.Next().Seconds()
			sum += g
			sumSq += g * g
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		if variance < 0 {
			variance = 0
		}
		return sqrt(variance) / mean
	}
	pois, burst := cv(MixPoisson), cv(MixBursty)
	if pois < 0.8 || pois > 1.2 {
		t.Fatalf("poisson CV = %.2f, want ≈1", pois)
	}
	if burst < 1.5*pois {
		t.Fatalf("bursty CV = %.2f, want ≥ 1.5× poisson (%.2f)", burst, pois)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestArrivalsValidation rejects non-positive rates.
func TestArrivalsValidation(t *testing.T) {
	if _, err := NewArrivals(ArrivalSpec{Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewArrivals(ArrivalSpec{Rate: -3}); err == nil {
		t.Fatal("negative rate accepted")
	}
}
