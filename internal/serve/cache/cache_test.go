package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLRUEvictionOrder pins the eviction order: least recently USED goes
// first, and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New[int, string](3, 0)
	for i := 1; i <= 3; i++ {
		c.Add(i, fmt.Sprint("v", i))
	}
	// Touch 1 so 2 becomes LRU.
	if _, ok := c.Get(1); !ok {
		t.Fatal("expected hit on 1")
	}
	c.Add(4, "v4") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted (LRU)")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%d should still be cached", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 3 {
		t.Errorf("size = %d, want 3", st.Size)
	}
}

// TestTTLExpiry pins TTL semantics with a fake clock: entries serve until
// the deadline and are dropped (and recounted as expirations) after it.
func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New[string, int](8, time.Minute)
	c.SetClock(func() time.Time { return now })

	c.Add("k", 42)
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("Get = %v %v, want 42 true", v, ok)
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived its TTL")
	}
	if st := c.Stats(); st.Expirations != 1 || st.Size != 0 {
		t.Errorf("stats = %+v, want 1 expiration, size 0", st)
	}
	// Recompute-on-miss after expiry commits a fresh entry.
	v, hit, err := c.Do(context.Background(), "k", func() (int, error) { return 43, nil })
	if err != nil || hit || v != 43 {
		t.Fatalf("Do after expiry = %v %v %v, want 43 false nil", v, hit, err)
	}
}

// TestDoCoalesces pins singleflight: N concurrent identical misses run the
// compute exactly once and all receive the committed value.
func TestDoCoalesces(t *testing.T) {
	c := New[string, int](8, 0)
	var computes atomic.Int32
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (int, error) {
				computes.Add(1)
				<-gate // hold the flight open so everyone piles on
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let callers reach the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1 (coalescing)", got)
	}
	for i, v := range vals {
		if v != 7 {
			t.Errorf("caller %d got %d, want 7", i, v)
		}
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Errorf("stats = %+v, want coalesced > 0", st)
	}
}

// TestDoFailureCommitsNothing pins the commit discipline: an erroring
// compute inserts no entry, and a coalesced waiter retries and succeeds
// with its own compute rather than inheriting the canceled leader's error.
func TestDoFailureCommitsNothing(t *testing.T) {
	c := New[string, int](8, 0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	sentinel := errors.New("canceled mid-run")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), "k", func() (int, error) {
			close(leaderIn)
			<-release
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("leader err = %v, want sentinel", err)
		}
	}()

	<-leaderIn // the leader is mid-compute; this Do must coalesce
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.Do(context.Background(), "k", func() (int, error) { return 99, nil })
		if err != nil || v != 99 {
			t.Errorf("follower = %v %v %v, want 99 after retry", v, hit, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-done

	if v, ok := c.Get("k"); !ok || v != 99 {
		t.Errorf("cache holds %v %v, want the follower's 99", v, ok)
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 compute error", st)
	}
}

// TestDoWaiterCtx pins that a waiter's own dead context frees it from an
// in-flight compute it did not lead.
func TestDoWaiterCtx(t *testing.T) {
	c := New[string, int](8, 0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() (int, error) {
		close(leaderIn)
		<-release
		return 1, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, _, err := c.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentChurn hammers the cache from many goroutines (run under
// -race): evicted values must remain readable by holders, and the entry
// table must never exceed capacity.
func TestConcurrentChurn(t *testing.T) {
	type payload struct{ k, v int }
	c := New[int, *payload](8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 64
				p, _, err := c.Do(context.Background(), k, func() (*payload, error) {
					return &payload{k: k, v: k * k}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// The pointer stays coherent even if the entry was evicted
				// the instant after we received it.
				if p.k != k || p.v != k*k {
					t.Errorf("corrupted payload %+v for key %d", p, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Errorf("len = %d exceeds capacity 8", n)
	}
}

// TestLeaderPanicReleasesFollowers pins the singleflight panic contract:
// a panicking leader must release every coalesced waiter with a
// *PanicError (previously they blocked forever on the never-closed done
// channel), re-raise the panic value in its own goroutine, commit
// nothing, and leave the key usable by later callers.
func TestLeaderPanicReleasesFollowers(t *testing.T) {
	c := New[string, int](8, 0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			r := recover()
			if r != "boom" {
				t.Errorf("leader recovered %v, want the original panic value", r)
			}
		}()
		c.Do(context.Background(), "k", func() (int, error) {
			close(leaderIn)
			<-release
			panic("boom")
		})
		t.Error("leader Do returned instead of panicking")
	}()

	<-leaderIn // leader is mid-compute; these Do calls must coalesce
	const followers = 8
	errs := make([]error, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			_, _, errs[i] = c.Do(context.Background(), "k", func() (int, error) {
				t.Error("follower compute ran; panic must propagate, not retry")
				return 0, nil
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	settle := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() { fwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-settle:
		t.Fatal("followers still blocked 5s after the leader panicked (the wedge)")
	}

	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("follower %d err = %v, want *PanicError", i, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("follower %d panic value = %v, want boom", i, pe.Value)
		}
	}
	if _, ok := c.Get("k"); ok {
		t.Error("panicking compute committed an entry")
	}
	// The key must not be poisoned: a fresh caller computes normally.
	v, hit, err := c.Do(context.Background(), "k", func() (int, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("post-panic Do = %v %v %v, want fresh 42", v, hit, err)
	}
	st := c.Stats()
	if st.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", st.Panics)
	}
	if st.Errors != 1 {
		t.Errorf("stats.Errors = %d, want 1 (the panicked compute)", st.Errors)
	}
}
