package sinrconn

import (
	"testing"
)

func TestJoinPoints(t *testing.T) {
	pts := uniformPoints(20, 40)
	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// New nodes well away from the cluster.
	newPts := []Point{{X: 200, Y: 0}, {X: 203, Y: 2}, {X: 206, Y: 0}}
	joined, err := res.JoinPoints(newPts, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Tree.NumNodes != 43 {
		t.Fatalf("joined tree spans %d nodes", joined.Tree.NumNodes)
	}
	if err := joined.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// The original result is untouched.
	if res.Tree.NumNodes != 40 {
		t.Error("original result mutated")
	}
	// New nodes are indexed after the old ones and are in the parent map.
	par := joined.Tree.Parent()
	for i := 40; i < 43; i++ {
		if _, ok := par[i]; !ok && i != joined.Tree.Root {
			t.Errorf("joined node %d has no parent", i)
		}
	}
}

func TestJoinPointsValidation(t *testing.T) {
	pts := uniformPoints(21, 16)
	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.JoinPoints(nil, Options{}); err == nil {
		t.Error("empty join accepted")
	}
	// A point on top of an existing node breaks the normalization.
	if _, err := res.JoinPoints([]Point{pts[0]}, Options{}); err == nil {
		t.Error("overlapping join point accepted")
	}
}

func TestRepairFailures(t *testing.T) {
	pts := uniformPoints(22, 48)
	res, err := BuildInitialBiTree(pts, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	par := res.Tree.Parent()
	// Fail some node that is a parent (interior).
	counts := map[int]int{}
	for _, p := range par {
		counts[p]++
	}
	for v, c := range counts {
		if v != res.Tree.Root && c > 0 {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no interior node")
	}
	repaired, err := res.RepairFailures([]int{victim}, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.NumNodes != 47 {
		t.Fatalf("repaired tree spans %d nodes", repaired.Tree.NumNodes)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if repaired.Metrics.AggregationLatency <= 0 {
		t.Error("latency not filled after repair")
	}
}

func TestRepairRootViaFacade(t *testing.T) {
	pts := uniformPoints(23, 32)
	res, err := BuildInitialBiTree(pts, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := res.RepairFailures([]int{res.Tree.Root}, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.Root == res.Tree.Root {
		t.Error("failed root still root")
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairFailuresValidation(t *testing.T) {
	pts := uniformPoints(24, 16)
	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.RepairFailures(nil, Options{}); err == nil {
		t.Error("empty failure set accepted")
	}
	if _, err := res.RepairFailures([]int{999}, Options{}); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestJoinThenRepairLifecycle(t *testing.T) {
	// Full lifecycle: build → join → fail the joined nodes → repair.
	pts := uniformPoints(25, 24)
	res, err := BuildInitialBiTree(pts, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := res.JoinPoints([]Point{{X: 150, Y: 0}, {X: 152, Y: 1}}, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := joined.RepairFailures([]int{24, 25}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.NumNodes != 24 {
		t.Fatalf("lifecycle end state: %d nodes", repaired.Tree.NumNodes)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairLinkFailures(t *testing.T) {
	pts := uniformPoints(26, 40)
	res, err := BuildInitialBiTree(pts, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first two links.
	var failed []Link
	for _, l := range res.Tree.Up[:2] {
		failed = append(failed, l.Link)
	}
	repaired, err := res.RepairLinkFailures(failed, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Tree.NumNodes != 40 {
		t.Fatalf("repaired tree spans %d nodes", repaired.Tree.NumNodes)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	have := map[Link]bool{}
	for _, l := range repaired.Tree.Up {
		have[l.Link] = true
	}
	for _, l := range failed {
		if have[l] {
			t.Fatalf("failed link %v re-formed", l)
		}
	}
	if _, err := res.RepairLinkFailures(nil, Options{}); err == nil {
		t.Error("empty link set accepted")
	}
}
