package sinr_test

// Hierarchical (quadtree) far-field suite, mirroring the flat grid's three
// layers (all Type 1 — deterministic; one failure = bug):
//
//  1. Plan lockstep — the kernel's pyramid derivation (depth, leaf side,
//     binning, per-level opening radii, certified bound) must equal the
//     oracle's independent naive transcription exactly.
//  2. Differential — the kernel's walked SINR must match the oracle's
//     brute-force recursive reference to 1e-12 relative across the
//     scenario matrix × α × ε (identical open/accept decisions, naive
//     physics inside the branches).
//  3. Certified bound — the walked SINR must bracket the *exact* oracle
//     physics within the plan's certified ε, winners must stay exact, and
//     the guard-banded feasibility check must never reject a schedule the
//     exact check accepts.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// quadEpsSweep includes a bound tighter than the flat grid handles well —
// the regime the quadtree exists for.
var quadEpsSweep = []float64{0.1, 0.5, 2.5}

// TestQuadPlanLockstep pins the kernel plan derivation to the oracle's
// independent transcription: same depth, same leaf side, same opening
// radii, same binning, same certified bound.
func TestQuadPlanLockstep(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for _, eps := range quadEpsSweep {
					pts, in := diffInstance(t, spec, alpha, 5, 48)
					q, err := in.QuadTree(eps)
					if err != nil {
						t.Fatal(err)
					}
					op := oracle.QuadPlanFor(pts, alpha, eps)
					if q.Levels() != op.Levels || q.LeafCell() != op.Cell {
						t.Fatalf("eps %v: kernel plan (L=%d cell=%v) oracle plan (L=%d cell=%v)",
							eps, q.Levels(), q.LeafCell(), op.Levels, op.Cell)
					}
					if got, want := q.Theta(), op.Theta; got != want {
						t.Fatalf("eps %v: theta kernel %v oracle %v", eps, got, want)
					}
					for lvl := 0; lvl <= q.Levels(); lvl++ {
						if got, want := q.OpenRadius2(lvl), op.OpenRad2[lvl]; got != want {
							t.Fatalf("eps %v level %d: open radius kernel %v oracle %v", eps, lvl, got, want)
						}
					}
					want := oracle.QuadCertifiedErr(op.Theta, alpha, eps)
					if got := q.CertifiedMaxRelError(); got != want {
						t.Fatalf("eps %v: certified error kernel %v oracle %v", eps, got, want)
					}
					if q.CertifiedMaxRelError() > eps {
						t.Fatalf("eps %v: certified error %v exceeds requested bound", eps, q.CertifiedMaxRelError())
					}
					if q.LeafCell() < 1 && q.Levels() > 0 {
						t.Fatalf("eps %v: leaf cell %v below the min-distance normalization", eps, q.LeafCell())
					}
					for i := range pts {
						kx, ky := q.LeafCoords(i)
						ox, oy := op.Leaf(pts[i])
						if kx != ox || ky != oy {
							t.Fatalf("eps %v: node %d binned to (%d,%d) by kernel, (%d,%d) by oracle",
								eps, i, kx, ky, ox, oy)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialQuadtreeVsOracle pins the kernel's hierarchical LinkSINR
// to the oracle's recursive naive reference at 1e-12 relative.
func TestDifferentialQuadtreeVsOracle(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					n := 40 + int(seed)*8
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 271))
					for _, eps := range quadEpsSweep {
						q, err := in.QuadTree(eps)
						if err != nil {
							t.Fatal(err)
						}
						sc := q.NewResolver()
						txs := farTxSet(rng, in, n/2)
						sc.Accumulate(txs)
						for trial := 0; trial < 12; trial++ {
							tx := txs[rng.Intn(len(txs))]
							l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
							if l.From == l.To {
								continue
							}
							got := sc.LinkSINR(txs, l, tx.Power)
							want := oracle.QuadLinkSINR(pts, p, eps, txs, l, tx.Power)
							if !diffClose(got, want) {
								t.Fatalf("seed %d eps %v LinkSINR(%v): kernel %v oracle %v",
									seed, eps, l, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestQuadtreeErrorBound asserts the contract WithMaxRelError sells for the
// hierarchical engine: the walked SINR stays within the certified (1±ε)
// bracket of the *exact* physics (oracle-computed), across the scenario
// matrix × α × ε — including the tight ε = 0.1 the flat grid cannot serve
// cheaply.
func TestQuadtreeErrorBound(t *testing.T) {
	const slack = 1e-9
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 2; seed++ {
					n := 64
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 613))
					for _, eps := range quadEpsSweep {
						q, err := in.QuadTree(eps)
						if err != nil {
							t.Fatal(err)
						}
						ce := q.CertifiedMaxRelError()
						sc := q.NewResolver()
						txs := farTxSet(rng, in, n/2)
						sc.Accumulate(txs)
						for _, tx := range txs {
							for trial := 0; trial < 4; trial++ {
								l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
								if l.From == l.To {
									continue
								}
								far := sc.LinkSINR(txs, l, tx.Power)
								signal := tx.Power / oracle.PathLoss(oracle.Dist(pts, l.From, l.To), p.Alpha)
								interf := 0.0
								for _, w := range txs {
									if w.Sender == l.From {
										continue
									}
									interf += w.Power / oracle.PathLoss(oracle.Dist(pts, w.Sender, l.To), p.Alpha)
								}
								if math.IsInf(signal, 1) || math.IsInf(interf, 1) {
									continue
								}
								loI := (1 - ce) * interf
								if loI < 0 {
									loI = 0
								}
								lo := signal / (p.Noise + (1+ce)*interf) * (1 - slack)
								hi := signal / (p.Noise + loI) * (1 + slack)
								if far < lo || far > hi {
									t.Fatalf("seed %d eps %v (cert %v) SINR(%v): quadtree %v outside [%v, %v] (signal %v interf %v)",
										seed, eps, ce, l, far, lo, hi, signal, interf)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestQuadtreeFeasibilityGuardBand asserts the guard-band semantics carry
// over to the hierarchical engine: never rejects a schedule the exact check
// accepts, and the decision matches the oracle's naive transcription.
func TestQuadtreeFeasibilityGuardBand(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					pts, in := diffInstance(t, spec, alpha, seed, 32)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 839))
					for _, eps := range quadEpsSweep {
						q, err := in.QuadTree(eps)
						if err != nil {
							t.Fatal(err)
						}
						sc := q.NewResolver()
						for trial := 0; trial < 10; trial++ {
							links, powers := randomLinkSet(rng, in, 1+rng.Intn(6))
							farOK, err := in.SINRFeasibleFarBuf(links, powers, q, nil, sc)
							if err != nil {
								t.Fatal(err)
							}
							exactOK, err := in.SINRFeasible(links, powers)
							if err != nil {
								t.Fatal(err)
							}
							if exactOK && !farOK {
								t.Fatalf("seed %d eps %v: quadtree check rejected an exactly-feasible schedule %v",
									seed, eps, links)
							}
							oOK, err := oracle.QuadSINRFeasible(pts, p, eps, links, powers)
							if err != nil {
								t.Fatal(err)
							}
							if farOK != oOK {
								t.Fatalf("seed %d eps %v: quadtree feasibility kernel %v oracle %v on %v",
									seed, eps, farOK, oOK, links)
							}
						}
					}
				}
			})
		}
	}
}

// TestQuadtreeResolveWinnerExact asserts Resolve's refinement contract for
// the hierarchical engine: the decoded winner and its received power are
// exactly the strongest sender — never perturbed by aggregation — including
// when the strongest sender hides deep in an otherwise-acceptable coarse
// node, and the interference total stays inside the certified band.
func TestQuadtreeResolveWinnerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := workload.UniformSeeded(42, 300)
	p := sinr.DefaultParams()
	in := sinr.MustInstance(pts, p)
	for _, eps := range []float64{0.1, 1.0} {
		q, err := in.QuadTree(eps)
		if err != nil {
			t.Fatal(err)
		}
		sc := q.NewResolver()
		for trial := 0; trial < 40; trial++ {
			txs := farTxSet(rng, in, 60)
			txs[0].Power *= 1e6
			sc.Accumulate(txs)
			for probe := 0; probe < 20; probe++ {
				v := rng.Intn(in.Len())
				listening := true
				for _, tx := range txs {
					if tx.Sender == v {
						listening = false
						break
					}
				}
				if !listening {
					continue
				}
				best, bestRP, total, sat := sc.Resolve(v, txs)
				if sat {
					t.Fatalf("unexpected saturation at %d", v)
				}
				wantBest, wantRP := -1, 0.0
				exactTotal := 0.0
				for k, tx := range txs {
					rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
					exactTotal += rp
					if rp > wantRP {
						wantRP = rp
						wantBest = k
					}
				}
				if best != wantBest {
					t.Fatalf("eps %v trial %d listener %d: winner %d (rp %v), exact argmax %d (rp %v)",
						eps, trial, v, best, bestRP, wantBest, wantRP)
				}
				if !diffClose(bestRP, wantRP) {
					t.Fatalf("eps %v trial %d listener %d: winner rp %v, exact %v", eps, trial, v, bestRP, wantRP)
				}
				ce := q.CertifiedMaxRelError()
				if total < exactTotal*(1-ce)*(1-1e-9) || total > exactTotal*(1+ce)*(1+1e-9) {
					t.Fatalf("eps %v trial %d listener %d: total %v outside certified band of exact %v",
						eps, trial, v, total, exactTotal)
				}
			}
		}
	}
}

// TestQuadtreeExtendReuse asserts a plan survives Extend when the grown
// points stay inside the root square (same geometry, new points binned) and
// is rebuilt to a correct plan otherwise.
func TestQuadtreeExtendReuse(t *testing.T) {
	pts := workload.UniformSeeded(7, 120)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := geom.BoundingBox(pts)
	inside := []geom.Point{
		{X: (lo.X + hi.X) / 2.001, Y: (lo.Y + hi.Y) / 2.003},
		{X: lo.X + 1.7, Y: hi.Y - 1.3},
	}
	grown, err := in.Extend(inside)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := grown.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gq.LeafCell() != q.LeafCell() || gq.Levels() != q.Levels() {
		t.Fatalf("interior extend rebuilt the plan: cell %v→%v levels %d→%d",
			q.LeafCell(), gq.LeafCell(), q.Levels(), gq.Levels())
	}
	outside := []geom.Point{{X: hi.X + 50, Y: hi.Y + 50}}
	grown2, err := in.Extend(outside)
	if err != nil {
		t.Fatal(err)
	}
	gq2, err := grown2.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sinr.MustInstance(grown2.Points(), grown2.Params()).QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gq2.LeafCell() != fresh.LeafCell() || gq2.Levels() != fresh.Levels() {
		t.Fatalf("exterior extend plan (cell %v, L=%d) differs from fresh build (cell %v, L=%d)",
			gq2.LeafCell(), gq2.Levels(), fresh.LeafCell(), fresh.Levels())
	}
}

// TestQuadtreeFeasibilityDuplicateSender pins the shared contract on the
// hierarchical resolver: a repeated sender is rejected with
// ErrDuplicateSender.
func TestQuadtreeFeasibilityDuplicateSender(t *testing.T) {
	pts := workload.UniformSeeded(3, 16)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	links := []sinr.Link{{From: 0, To: 1}, {From: 0, To: 2}}
	powers := []float64{100, 100}
	if _, err := in.SINRFeasibleFarBuf(links, powers, q, nil, q.NewResolver()); !errors.Is(err, sinr.ErrDuplicateSender) {
		t.Fatalf("duplicate-sender set returned %v, want ErrDuplicateSender", err)
	}
}

// TestQuadtreeInvalidEps pins constructor validation.
func TestQuadtreeInvalidEps(t *testing.T) {
	pts := workload.UniformSeeded(3, 8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := in.QuadTree(eps); err == nil {
			t.Fatalf("QuadTree accepted eps %v", eps)
		}
	}
}
