// Command connect builds a connectivity structure for a generated wireless
// instance and prints the tree, its schedule, and the construction metrics.
//
// Usage:
//
//	connect -n 64 -workload uniform -pipeline arbitrary -seed 1 [-v]
//	connect -n 64 -sweep 8                  # all pipelines × 8 seeds, one Network
//	connect -n 256 -timeout 2s              # bound the construction time
//	connect -n 4096 -maxrelerr 0.5          # far-field approximate physics
//	connect -n 128 -churn events=200,join=1,fail=1.5,burst=0.3,shower=0.5
//	connect -n 128 -churn events=100,fail=1,move=2 -mobility citygrid
//
// Pipelines: init (Section 6), reschedule (Section 7), mean (Section 8,
// mean power), arbitrary (Section 8, power control).
// Workloads: every generator of the scenario matrix (workload.Matrix) —
// uniform, clusters, grid, chain, gaussians, annulus, powerlaw, city.
//
// Single runs and sweeps share one session: the point set is validated and
// the physics gain table built exactly once (Open), and the sweep fans out
// across the session's worker pool with bounded concurrency (RunMatrix).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sinrconn"

	"sinrconn/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	n := fs.Int("n", 64, "number of nodes")
	wl := fs.String("workload", "uniform", "workload: uniform|clusters|grid|chain|gaussians|annulus|powerlaw|city")
	pipeline := fs.String("pipeline", "arbitrary", "pipeline: init|reschedule|mean|arbitrary")
	seed := fs.Int64("seed", 1, "random seed")
	drop := fs.Float64("drop", 0, "reception drop probability in [0,1)")
	maxRelErr := fs.Float64("maxrelerr", 0, "far-field approximation error bound ε (0 = exact physics)")
	farMode := fs.String("farmode", "auto", "far-field engine at ε > 0: auto|quadtree|flat")
	sweep := fs.Int("sweep", 0, "run all pipelines × this many seeds as one batch")
	churnSpec := fs.String("churn", "", "stream a churn trace instead of a single build: events=N[,join=R][,fail=R][,burst=R][,shower=R][,move=R][,burstradius=R][,showermax=N][,speed=R]")
	mobility := fs.String("mobility", "", "mobility model for churn move events: waypoint|citygrid")
	timeout := fs.Duration("timeout", 0, "abort constructions that exceed this duration (0 = none)")
	verbose := fs.Bool("v", false, "print every scheduled link")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pts, err := generate(*wl, *n, *seed)
	if err != nil {
		return err
	}
	opts := []sinrconn.Option{
		sinrconn.WithSeed(*seed),
		sinrconn.WithAutoNormalize(true),
	}
	if *drop > 0 {
		opts = append(opts, sinrconn.WithDropProb(*drop))
	}
	if *maxRelErr != 0 {
		// Non-zero values (including invalid negatives) flow to the option
		// so Open reports validation errors instead of silently running the
		// exact path.
		opts = append(opts, sinrconn.WithMaxRelError(*maxRelErr))
	}
	switch *farMode {
	case "auto":
	case "quadtree":
		opts = append(opts, sinrconn.WithFarMode(sinrconn.FarQuadtree))
	case "flat":
		opts = append(opts, sinrconn.WithFarMode(sinrconn.FarFlat))
	default:
		return fmt.Errorf("unknown far mode %q (auto|quadtree|flat)", *farMode)
	}
	nw, err := sinrconn.Open(pts, opts...)
	if err != nil {
		return err
	}
	defer nw.Close()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *churnSpec != "" {
		if *sweep > 0 {
			return fmt.Errorf("-churn and -sweep are mutually exclusive")
		}
		conflict := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "pipeline" {
				conflict = true
			}
		})
		if conflict {
			return fmt.Errorf("-churn builds its own tree; drop the -pipeline flag")
		}
		trace, err := parseTrace(*churnSpec, *mobility, *seed)
		if err != nil {
			return err
		}
		return runChurn(ctx, out, nw, *wl, *n, trace)
	}
	if *mobility != "" {
		return fmt.Errorf("-mobility only applies to -churn traces")
	}

	if *sweep > 0 {
		conflict := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "pipeline" {
				conflict = true
			}
		})
		if conflict {
			return fmt.Errorf("-sweep runs every pipeline; drop the -pipeline flag")
		}
		return runSweep(ctx, out, nw, *wl, *n, *sweep, *seed)
	}

	p, err := parsePipeline(*pipeline)
	if err != nil {
		return err
	}
	res, err := nw.Run(ctx, p)
	if err != nil {
		return err
	}

	m := res.Metrics
	fmt.Fprintf(out, "workload=%s n=%d Δ=%.1f Υ=%.1f pipeline=%s seed=%d\n",
		*wl, *n, m.Delta, m.Upsilon, *pipeline, *seed)
	fmt.Fprintf(out, "root=%d  links=%d  schedule=%d slots  construction=%d slots\n",
		res.Tree.Root, len(res.Tree.Up), m.ScheduleLength, m.SlotsUsed)
	if m.AggregationLatency > 0 {
		fmt.Fprintf(out, "aggregation latency=%d  broadcast latency=%d\n",
			m.AggregationLatency, m.BroadcastLatency)
	}
	fmt.Fprintf(out, "max degree=%d  depth=%d  energy=%.3g\n",
		res.Tree.MaxDegree(), res.Tree.Depth(), m.Energy)
	if p.Ordered() {
		if err := res.Tree.Verify(); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintln(out, "verification: tree + ordering + per-slot feasibility OK")
	}
	if *verbose {
		links := append([]sinrconn.ScheduledLink(nil), res.Tree.Up...)
		sort.Slice(links, func(i, j int) bool {
			if links[i].Slot != links[j].Slot {
				return links[i].Slot < links[j].Slot
			}
			return links[i].From < links[j].From
		})
		for _, l := range links {
			fmt.Fprintf(out, "  slot %3d: %4d -> %-4d power %.3g\n", l.Slot, l.From, l.To, l.Power)
		}
	}
	return nil
}

// runSweep fans the open session out across pipelines × seeds with
// RunMatrix and prints one summary line per pipeline (mean over seeds).
// The seed family starts at the -seed flag, so sweeps are reproducible.
func runSweep(ctx context.Context, out io.Writer, nw *sinrconn.Network, wl string, n, seedCount int, baseSeed int64) error {
	pipes := sinrconn.Pipelines()
	seeds := make([]int64, seedCount)
	for i := range seeds {
		seeds[i] = baseSeed + int64(i)
	}
	specs := sinrconn.Specs(pipes, seeds)
	start := time.Now()
	results, err := nw.RunMatrix(ctx, specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload=%s n=%d  %d specs in %v (one Network, shared gain table)\n",
		wl, n, len(specs), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "%-16s %10s %14s %10s\n", "pipeline", "schedule", "construction", "energy")
	for pi, p := range pipes {
		var sched, slots, energy float64
		for si := range seeds {
			m := results[pi*len(seeds)+si].Metrics
			sched += float64(m.ScheduleLength)
			slots += float64(m.SlotsUsed)
			energy += m.Energy
		}
		k := float64(len(seeds))
		fmt.Fprintf(out, "%-16s %10.1f %14.1f %10.3g\n", p, sched/k, slots/k, energy/k)
	}
	return nil
}

// parseTrace turns the -churn comma list into a TraceSpec. Unset rates
// default to zero; an all-zero mix is rejected by TraceSpec.Validate.
func parseTrace(spec, mobility string, seed int64) (sinrconn.TraceSpec, error) {
	trace := sinrconn.TraceSpec{Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return trace, fmt.Errorf("churn spec entry %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return trace, fmt.Errorf("churn spec %s: %v", key, err)
		}
		switch key {
		case "events":
			trace.Events = int(f)
		case "join":
			trace.JoinRate = f
		case "fail":
			trace.FailRate = f
		case "burst":
			trace.BurstRate = f
		case "shower":
			trace.ShowerRate = f
		case "move":
			trace.MoveRate = f
		case "burstradius":
			trace.BurstRadius = f
		case "showermax":
			trace.ShowerMax = int(f)
		case "speed":
			trace.MobilitySpeed = f
		default:
			return trace, fmt.Errorf("unknown churn spec key %q", key)
		}
	}
	switch mobility {
	case "":
	case "waypoint":
		trace.Mobility = sinrconn.MobilityWaypoint
	case "citygrid":
		trace.Mobility = sinrconn.MobilityCityGrid
	default:
		return trace, fmt.Errorf("unknown mobility model %q (waypoint|citygrid)", mobility)
	}
	return trace, nil
}

// runChurn streams the trace and prints the engine's report.
func runChurn(ctx context.Context, out io.Writer, nw *sinrconn.Network, wl string, n int, trace sinrconn.TraceSpec) error {
	start := time.Now()
	rep, err := nw.Churn(ctx, trace)
	if err != nil {
		return err
	}
	st := rep.Stats
	fmt.Fprintf(out, "workload=%s n=%d churn: %d events in %v (%.0f events/sec)\n",
		wl, n, st.Events, time.Since(start).Round(time.Millisecond),
		float64(st.Events)/time.Since(start).Seconds())
	fmt.Fprintf(out, "joins=%d (damped %d)  fails=%d  bursts=%d  showers=%d  moves=%d  nodes failed=%d moved=%d\n",
		st.Joins, st.DampedJoins, st.Fails, st.Bursts, st.Showers, st.Moves,
		st.NodesFailed, st.NodesMoved)
	fmt.Fprintf(out, "incremental=%d  restamps=%d  rebuilds=%d  retries=%d  compactions=%d  muted peak=%d\n",
		st.IncrementalRepairs, st.Restamps, st.Rebuilds, st.Retries, st.Compactions, st.MutedPeak)
	fmt.Fprintf(out, "slots used=%d  peak schedule=%d  soft errors=%d\n",
		st.SlotsUsed, st.PeakScheduleLength, len(rep.Soft))
	fmt.Fprintf(out, "final: root=%d  nodes=%d  links=%d  schedule=%d slots\n",
		rep.Final.Tree.Root, rep.Final.Tree.NumNodes, len(rep.Final.Tree.Up),
		rep.Final.Metrics.ScheduleLength)
	if rep.Final.Tree.NumNodes > 1 {
		if err := rep.Final.Tree.Verify(); err != nil {
			return fmt.Errorf("final tree verification failed: %w", err)
		}
		fmt.Fprintln(out, "verification: tree + ordering + per-slot feasibility OK")
	}
	return nil
}

func parsePipeline(name string) (sinrconn.Pipeline, error) {
	switch name {
	case "init":
		return sinrconn.PipelineInit, nil
	case "reschedule":
		return sinrconn.PipelineRescheduleMean, nil
	case "mean":
		return sinrconn.PipelineTVCMean, nil
	case "arbitrary":
		return sinrconn.PipelineTVCArbitrary, nil
	}
	return 0, fmt.Errorf("unknown pipeline %q", name)
}

func generate(name string, n int, seed int64) ([]sinrconn.Point, error) {
	for _, spec := range workload.Matrix() {
		if spec.Name != name {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		g := spec.Gen(rng, n)
		pts := make([]sinrconn.Point, len(g))
		for i, p := range g {
			pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		}
		return pts, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
