package sinrconn

import (
	"context"
	"errors"

	"sinrconn/internal/core"
	"sinrconn/internal/sim"
)

// AggFunc combines two partial aggregates during a converge-cast. It must
// be commutative and associative.
type AggFunc func(a, b int64) int64

// MaxAgg folds with max.
func MaxAgg(a, b int64) int64 { return core.MaxAgg(a, b) }

// SumAgg folds with addition.
func SumAgg(a, b int64) int64 { return core.SumAgg(a, b) }

// AggregateOutcome reports a physical converge-cast execution.
type AggregateOutcome struct {
	// Value is the aggregate collected at the root.
	Value int64
	// SlotsUsed is the channel time consumed (schedule length + 1 drain
	// slot).
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// BroadcastOutcome reports a physical dissemination epoch.
type BroadcastOutcome struct {
	// Reached is the number of nodes that received the value.
	Reached int
	// SlotsUsed is the channel time consumed.
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// PairOutcome reports a physical node-to-node message delivery.
type PairOutcome struct {
	// Delivered reports whether dst received the message.
	Delivered bool
	// SlotsUsed is the total channel time: one converge-cast epoch up plus
	// one dissemination epoch down — the Definition 1 "2× schedule" bound.
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// epochConfig derives the engine config for a physical epoch on r's tree,
// borrowing the session pool for the epoch's duration (the caller must
// invoke the returned release). WithDropProb and WithSeed apply to the
// epoch itself — fading injected into a converge-cast can legitimately
// lose a transfer, which the epoch reports as an error.
func (nw *Network) epochConfig(r *Result, opts []RunOption) (sim.Config, func(), error) {
	done, err := nw.beginOp()
	if err != nil {
		return sim.Config{}, func() {}, err
	}
	s, err := nw.opSettings(opts)
	if err != nil {
		done()
		return sim.Config{}, func() {}, err
	}
	ff, adaptive, err := opFarField(r, r.Tree.inst, s)
	if err != nil {
		done()
		return sim.Config{}, func() {}, err
	}
	pool, release := nw.acquirePool()
	return sim.Config{
		Workers:  s.workers,
		DropProb: s.drop,
		Seed:     s.seed,
		Pool:     pool,
		FarField: ff,
		Adaptive: adaptive,
		Observer: s.observer,
	}, func() { release(); done() }, nil
}

// Broadcast physically executes one dissemination epoch over the SINR
// channel: the bi-tree's dual links fire in reversed schedule order,
// carrying value from the root to every node (Definition 1). An error
// means some node was left unreached — a schedule or physics violation.
func (nw *Network) Broadcast(ctx context.Context, r *Result, value int64, opts ...RunOption) (*BroadcastOutcome, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	ecfg, release, err := nw.epochConfig(r, opts)
	defer release()
	if err != nil {
		return nil, err
	}
	out, err := core.RunBroadcast(ctx, r.Tree.inst, r.Tree.inner, value, ecfg)
	if err != nil {
		return nil, err
	}
	return &BroadcastOutcome{
		Reached:   out.Reached,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}

// Aggregate physically executes one converge-cast epoch over the SINR
// channel: each tree link transmits its sender's running aggregate in its
// scheduled slot at its stamped power, concurrently with the rest of its
// slot group. values[i] is node i's contribution. On success the returned
// Value equals f folded over every tree node's value — if the schedule
// were infeasible or mis-ordered, the physics would lose a transfer and
// Aggregate returns an error instead.
func (nw *Network) Aggregate(ctx context.Context, r *Result, values []int64, f AggFunc, opts ...RunOption) (*AggregateOutcome, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	ecfg, release, err := nw.epochConfig(r, opts)
	defer release()
	if err != nil {
		return nil, err
	}
	out, err := core.RunAggregation(ctx, r.Tree.inst, r.Tree.inner, values, core.AggFunc(f), ecfg)
	if err != nil {
		return nil, err
	}
	return &AggregateOutcome{
		Value:     out.Value,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}

// SendMessage physically delivers a message from src to dst over the SINR
// channel: the payload piggybacks on one converge-cast epoch to the root,
// then rides one dissemination epoch down (Definition 1's node-to-node
// communication guarantee).
func (nw *Network) SendMessage(ctx context.Context, r *Result, src, dst int, payload int64, opts ...RunOption) (*PairOutcome, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	ecfg, release, err := nw.epochConfig(r, opts)
	defer release()
	if err != nil {
		return nil, err
	}
	out, err := core.RunPairMessage(ctx, r.Tree.inst, r.Tree.inner, src, dst, payload, ecfg)
	if err != nil {
		return nil, err
	}
	return &PairOutcome{
		Delivered: out.Delivered,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}

// epochNetwork resolves the handle a deprecated epoch wrapper runs on.
func (r *Result) epochNetwork() (*Network, error) {
	if r.nw == nil {
		return nil, errors.New("sinrconn: result is not bound to a network")
	}
	return r.nw, nil
}

// Broadcast physically executes one dissemination epoch, under the same
// channel mode (exact or far-field) the result's tree was built with —
// legacy Options cannot express a per-epoch override.
//
// Deprecated: use (*Network).Broadcast, which takes a context.
func (r *Result) Broadcast(value int64, opt Options) (*BroadcastOutcome, error) {
	nw, err := r.epochNetwork()
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalence
	out, err := core.RunBroadcast(context.Background(), r.Tree.inst, r.Tree.inner, value,
		sim.Config{Workers: opt.Workers, Pool: pool, FarField: r.Tree.ff, Adaptive: r.Tree.ffAdaptive})
	if err != nil {
		return nil, err
	}
	return &BroadcastOutcome{Reached: out.Reached, SlotsUsed: out.SlotsUsed, Energy: out.Energy}, nil
}

// Aggregate physically executes one converge-cast epoch.
//
// Deprecated: use (*Network).Aggregate, which takes a context.
func (r *Result) Aggregate(values []int64, f AggFunc, opt Options) (*AggregateOutcome, error) {
	nw, err := r.epochNetwork()
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalence
	out, err := core.RunAggregation(context.Background(), r.Tree.inst, r.Tree.inner, values, core.AggFunc(f),
		sim.Config{Workers: opt.Workers, Pool: pool, FarField: r.Tree.ff, Adaptive: r.Tree.ffAdaptive})
	if err != nil {
		return nil, err
	}
	return &AggregateOutcome{Value: out.Value, SlotsUsed: out.SlotsUsed, Energy: out.Energy}, nil
}

// SendMessage physically delivers a message from src to dst.
//
// Deprecated: use (*Network).SendMessage, which takes a context.
func (r *Result) SendMessage(src, dst int, payload int64, opt Options) (*PairOutcome, error) {
	nw, err := r.epochNetwork()
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalence
	out, err := core.RunPairMessage(context.Background(), r.Tree.inst, r.Tree.inner, src, dst, payload,
		sim.Config{Workers: opt.Workers, Pool: pool, FarField: r.Tree.ff, Adaptive: r.Tree.ffAdaptive})
	if err != nil {
		return nil, err
	}
	return &PairOutcome{Delivered: out.Delivered, SlotsUsed: out.SlotsUsed, Energy: out.Energy}, nil
}
