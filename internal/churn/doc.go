// Package churn generates and regulates streaming membership traffic for
// the continuous-churn engine: node joins, independent failures, correlated
// spatial failure bursts (a disc dies together — the standard model for a
// localized power or jamming event), link-failure showers, and mobility
// ticks.
//
// The package has two halves:
//
//   - Generator: a deterministic, seeded event source. Event kinds arrive
//     as a superposition of Poisson processes (one rate per kind);
//     inter-arrival times are exponential in the total rate and the kind is
//     drawn by rate weights, so any sub-mix is itself Poisson. The
//     generator is ONLINE: each Next call receives the live membership
//     state, because events depend on it — failures strike alive nodes,
//     joins must land ≥ 1 away from every existing point (the instance
//     normalization), bursts are centered on the current deployment.
//
//   - Damper: flap damping in the style of BGP route-flap damping — a
//     spatial region that keeps failing (k failures within a sliding
//     window) is quarantined for a cooldown period. The churn driver
//     excludes damped regions from attachment targets (no new node or
//     orphan attaches through a member there) and refuses joins into them,
//     so a flapping disc cannot pull the rest of the tree into repeated
//     repair churn. Regions are radius-sized grid cells: membership is
//     quantized, which errs on the side of damping slightly more area than
//     the literal disc around the failures.
//
// Both halves are pure state machines over explicit inputs (no wall clock,
// no global randomness), which is what makes churn runs replayable: a
// (seed, trace-spec) pair fully determines the event stream.
package churn
