package sinrconn_test

// Serving-daemon load harness (PR 7). TestServeHeavyLoadAcceptance is the
// acceptance gate: ≥1000 concurrent sessions over one n=1024 deployment,
// closed-loop clients on seeded arrival traces, asserting p99 < 10×p50 and
// result-cache hit rate ≥ 90% on the repeat-heavy steady state, across 3
// seeds and both arrival mixes. BenchmarkServeLoadgen is the CI bench
// smoke. Headline numbers recorded in BENCH_serve.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"sinrconn/internal/churn"
	"sinrconn/internal/serve"
	"sinrconn/internal/serve/loadgen"
)

func runLoad(t testing.TB, cfg loadgen.Config) *loadgen.Report {
	t.Helper()
	srv := serve.New(serve.Config{})
	defer srv.Close()
	cfg.Handler = srv.Handler()
	report, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestServeHeavyLoadAcceptance is slow (~1 min): it stands up the full
// 1000-session deployment three times per arrival mix. -short skips it;
// the CI daemon lane and the BENCH_serve.json refresh run it in full.
func TestServeHeavyLoadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy load acceptance: run without -short")
	}
	for _, mix := range []churn.ArrivalMix{churn.MixPoisson, churn.MixBursty} {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed=%d", mix, seed), func(t *testing.T) {
				report := runLoad(t, loadgen.Config{
					Clients:  64,
					Sessions: 1000,
					Requests: 4000,
					N:        1024,
					Seed:     seed,
					Arrival:  churn.ArrivalSpec{Rate: 1000, Mix: mix},
					Keyspace: 8,
					Warmup:   true,
				})
				raw, _ := json.Marshal(report)
				t.Logf("report: %s", raw)

				if report.Errors > 0 {
					t.Fatalf("%d request errors under load", report.Errors)
				}
				if report.Requests < 3900 {
					t.Fatalf("only %d requests completed, want ≈4000", report.Requests)
				}
				if report.SharedSessions != 999 {
					t.Fatalf("shared sessions = %d, want 999 (1000 sessions, one deployment)", report.SharedSessions)
				}
				if report.HitRate < 0.90 {
					t.Fatalf("steady-state hit rate %.3f, want ≥ 0.90", report.HitRate)
				}
				if report.P99Ms >= 10*report.P50Ms {
					t.Fatalf("p99 %.3fms ≥ 10× p50 %.3fms", report.P99Ms, report.P50Ms)
				}
			})
		}
	}
}

// BenchmarkServeLoadgen is the bench-smoke surface: one short closed-loop
// load per arrival mix at moderate scale, reporting throughput and tail
// latency as benchmark metrics.
func BenchmarkServeLoadgen(b *testing.B) {
	for _, mix := range []churn.ArrivalMix{churn.MixPoisson, churn.MixBursty} {
		b.Run(mix.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report := runLoad(b, loadgen.Config{
					Clients:  16,
					Sessions: 64,
					Requests: 800,
					N:        256,
					Seed:     int64(i + 1),
					Arrival:  churn.ArrivalSpec{Rate: 500, Mix: mix},
					Keyspace: 8,
					Warmup:   true,
				})
				if report.Errors > 0 {
					b.Fatalf("%d request errors", report.Errors)
				}
				if report.HitRate <= 0 {
					b.Fatal("zero cache hit rate in bench smoke")
				}
				b.ReportMetric(report.Throughput, "req/s")
				b.ReportMetric(report.P50Ms, "p50-ms")
				b.ReportMetric(report.P99Ms, "p99-ms")
				b.ReportMetric(report.HitRate, "hit-rate")
			}
		})
	}
}
