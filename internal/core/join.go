package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sinrconn/internal/geom"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// Join implements the paper's "asynchronous node wakeup" extension
// (Conclusions, Section 9): attach newly awakened nodes to an existing
// bi-tree, distributedly, using only the channel.
//
// The protocol is the natural restriction of Init: members (already
// connected nodes) never broadcast and never leave — they listen and
// acknowledge; joiners behave exactly like Init's active nodes, laddering
// through doubling distance classes. A joiner that receives an
// acknowledgment attaches as a leaf and immediately becomes a member, so
// chains of joiners resolve within the same run.
//
// Scheduling: a leaf's out-link must precede its parent's out-link in the
// aggregation order, so new links are stamped *before* the existing
// schedule: the link formed in pair k of the join run gets stamp
// minSlot − 1 − k, which decreases with attach time — a joiner that
// attached under an earlier joiner fires later than its child, preserving
// the ordering property without touching the existing stamps. Per-pair
// concurrency keeps each new stamp group SINR-feasible.
func Join(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, joiners []int, cfg InitConfig) (*JoinResult, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	member := make(map[int]bool, len(bt.Nodes))
	for _, v := range bt.Nodes {
		member[v] = true
	}
	joinSet := make(map[int]bool, len(joiners))
	for _, j := range joiners {
		if j < 0 || j >= in.Len() {
			return nil, fmt.Errorf("core: joiner %d out of range", j)
		}
		if member[j] {
			return nil, fmt.Errorf("core: joiner %d already in the tree", j)
		}
		if joinSet[j] {
			return nil, fmt.Errorf("core: duplicate joiner %d", j)
		}
		joinSet[j] = true
	}
	out := &tree.BiTree{
		Root:  bt.Root,
		Nodes: append([]int(nil), bt.Nodes...),
		Up:    append([]tree.TimedLink(nil), bt.Up...),
	}
	if len(joiners) == 0 {
		return &JoinResult{Tree: out}, nil
	}

	// Ladder covers the farthest joiner-to-anything distance.
	var pts []geom.Point
	for _, v := range bt.Nodes {
		pts = append(pts, in.Point(v))
	}
	for _, j := range joiners {
		pts = append(pts, in.Point(j))
	}
	ladder := geom.NumLengthClasses(geom.MaxDist(pts))
	pairs := cfg.pairsPerRound(len(joiners) + 1)
	p := in.Params()

	master := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, in.Len())
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	// Ack contention: unlike Init, where the set of potential acknowledgers
	// thins as nodes deactivate, every member is a potential acknowledger
	// here — in the permissive safety rounds, all of them. Members
	// therefore draw a decay level ℓ uniform in {0..⌈log₂ n⌉} per ack
	// opportunity and answer with probability 2^−ℓ, which yields a
	// constant probability of an isolated (decodable) acknowledgment per
	// slot-pair regardless of how many members heard the broadcast.
	decayLevels := 1
	for 1<<decayLevels < len(bt.Nodes)+len(joiners) {
		decayLevels++
	}
	forbidden := make(map[sinr.Link]bool, len(cfg.Forbidden))
	for _, l := range cfg.Forbidden {
		forbidden[l] = true
	}
	muted := make(map[int]bool, len(cfg.Mute))
	for _, v := range cfg.Mute {
		muted[v] = true
	}
	nodes := make([]*joinNode, in.Len())
	procs := make([]sim.Protocol, in.Len())
	for i := 0; i < in.Len(); i++ {
		role := joinIdle
		switch {
		case member[i]:
			role = joinMember
		case joinSet[i]:
			role = joinJoiner
		}
		nodes[i] = &joinNode{
			id:            i,
			cfg:           &cfg,
			rng:           rand.New(rand.NewSource(seeds[i])),
			role:          role,
			broadcastPair: -1,
			decayLevels:   decayLevels,
			forbidden:     forbidden,
			muted:         muted[i],
		}
		procs[i] = nodes[i]
	}
	eng, err := sim.NewEngine(in, procs, cfg.engineConfig(cfg.Seed^0x9E3779B9))
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	remaining := func() int {
		c := 0
		for _, j := range joiners {
			if nodes[j].role == joinJoiner {
				c++
			}
		}
		return c
	}
	runRound := func(spec roundSpec) (bool, error) {
		for k := 0; k < pairs; k++ {
			if err := checkCtx(ctx, "join"); err != nil {
				return false, err
			}
			for i := range nodes {
				nodes[i].spec = spec
			}
			eng.Step()
			eng.Step()
			if remaining() == 0 {
				for i := range nodes {
					nodes[i].spec = spec
				}
				eng.Step()
				eng.Step()
				return true, nil
			}
		}
		return remaining() == 0, nil
	}

	done := false
	rounds := 0
	for r := 1; r <= ladder && !done; r++ {
		hi := math.Exp2(float64(r))
		lo := math.Exp2(float64(r - 1))
		if !cfg.StrictGate {
			lo = 0
		}
		rounds++
		if done, err = runRound(roundSpec{lo: lo, hi: hi, power: p.SafePower(hi)}); err != nil {
			return nil, err
		}
	}
	topHi := math.Exp2(float64(ladder))
	for x := 0; x < cfg.ExtraRounds && !done; x++ {
		rounds++
		if done, err = runRound(roundSpec{lo: 0, hi: topHi, power: p.SafePower(topHi)}); err != nil {
			return nil, err
		}
	}
	res := &JoinResult{
		SlotsUsed: eng.Stats().Slots,
		Rounds:    rounds,
		Stats:     eng.Stats(),
	}
	if !done {
		return res, fmt.Errorf("%w: %d joiners unattached", ErrNotConverged, remaining())
	}

	// Merge: stamp new links before the existing schedule, decreasing with
	// attach time so joiner-under-joiner chains stay ordered.
	minSlot, _ := out.SlotSpan()
	if len(out.Up) == 0 {
		minSlot = 1
	}
	for _, j := range joiners {
		nd := nodes[j]
		if nd.outLink == nil {
			return res, fmt.Errorf("core: attached joiner %d has no out-link", j)
		}
		tl := *nd.outLink
		tl.Slot = minSlot - 1 - tl.Slot
		out.Up = append(out.Up, tl)
		out.Nodes = append(out.Nodes, j)
		res.Attached++
	}
	out.Compact()
	res.Tree = out
	return res, nil
}

// JoinResult is the outcome of a Join run.
type JoinResult struct {
	// Tree is the merged bi-tree over the old nodes plus the attached
	// joiners, with a compacted, ordered, per-slot-feasible schedule.
	Tree *tree.BiTree
	// Attached is the number of joiners connected (all of them on success).
	Attached int
	// SlotsUsed is the channel time the join protocol consumed.
	SlotsUsed int
	// Rounds is the number of rounds (ladder + safety) executed.
	Rounds int
	// Stats carries the engine counters.
	Stats sim.Stats
}

type joinRole uint8

const (
	joinIdle joinRole = iota + 1
	joinMember
	joinJoiner
)

// joinNode is the per-node state machine of the join protocol.
type joinNode struct {
	id            int
	cfg           *InitConfig
	rng           *rand.Rand
	role          joinRole
	outLink       *tree.TimedLink
	broadcastPair int
	pendingPower  float64
	decayLevels   int
	forbidden     map[sinr.Link]bool
	muted         bool
	spec          roundSpec
}

var _ sim.Protocol = (*joinNode)(nil)

// Step implements sim.Protocol.
func (nd *joinNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if nd.role == joinIdle {
		return sim.Idle()
	}
	if slot%2 == 0 {
		return nd.dataSlot(slot, inbox)
	}
	return nd.ackSlot(inbox)
}

func (nd *joinNode) dataSlot(slot int, inbox []sim.Delivery) sim.Action {
	if nd.role == joinJoiner && nd.broadcastPair >= 0 {
		for _, d := range inbox {
			if d.Msg.Kind == sim.KindAck && d.Msg.To == nd.id {
				if nd.forbidden[sinr.Link{From: nd.id, To: d.Msg.From}] {
					continue // would re-create a permanently failed link
				}
				nd.role = joinMember
				nd.outLink = &tree.TimedLink{
					L:     sinr.Link{From: nd.id, To: d.Msg.From},
					Slot:  nd.broadcastPair,
					Power: nd.pendingPower,
				}
				break
			}
		}
		nd.broadcastPair = -1
	}
	switch nd.role {
	case joinJoiner:
		if nd.rng.Float64() < nd.cfg.BroadcastProb {
			nd.broadcastPair = slot / 2
			nd.pendingPower = nd.spec.power
			return sim.Transmit(nd.spec.power, sim.Message{Kind: sim.KindBroadcast, From: nd.id})
		}
		return sim.Listen()
	case joinMember:
		return sim.Listen()
	default:
		return sim.Idle()
	}
}

func (nd *joinNode) ackSlot(inbox []sim.Delivery) sim.Action {
	switch nd.role {
	case joinJoiner:
		if nd.broadcastPair >= 0 {
			return sim.Listen()
		}
		return sim.Listen()
	case joinMember:
		if nd.muted {
			// Flap-damped: stays in the tree and keeps relaying, but never
			// invites a new attachment (no acknowledgment, ever).
			return sim.Listen()
		}
		for _, d := range inbox {
			if d.Msg.Kind != sim.KindBroadcast {
				continue
			}
			if d.Dist < nd.spec.lo || d.Dist >= nd.spec.hi {
				continue
			}
			if nd.forbidden[sinr.Link{From: d.Msg.From, To: nd.id}] {
				continue // the broadcaster must not attach through us
			}
			if nd.rng.Float64() >= nd.cfg.AckProb {
				continue
			}
			// Decay sweep: all members share the per-pair level
			// ℓ = pair mod (L+1) (slot counters are common knowledge) and
			// answer with probability 2^−ℓ. At the level where
			// (#listeners)·2^−ℓ ≈ 1 the probability that exactly one
			// member answers — the only decodable outcome when answerers
			// are equidistant — is a constant. Independent per-member
			// levels do NOT concentrate; the common sweep is essential.
			level := (d.Slot / 2) % (nd.decayLevels + 1)
			if nd.rng.Float64() >= 1/float64(int(1)<<level) {
				continue
			}
			return sim.Transmit(nd.spec.power, sim.Message{
				Kind: sim.KindAck,
				From: nd.id,
				To:   d.Msg.From,
			})
		}
		return sim.Listen()
	default:
		return sim.Idle()
	}
}
