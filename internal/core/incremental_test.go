package core

// Tests for the incremental schedule repair path: every spliced tree must
// pass the full validator battery (the same bar as a rebuilt one), the
// untouched part of the schedule must actually be spliced through (stamp
// order preserved), and the mobility/link variants must compose.

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
	"sinrconn/internal/workload"
)

// pickFailures selects k deterministic non-root victims spread across the
// tree.
func pickFailures(bt *tree.BiTree, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	cand := make([]int, 0, len(bt.Nodes))
	for _, v := range bt.Nodes {
		if v != bt.Root {
			cand = append(cand, v)
		}
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if k > len(cand) {
		k = len(cand)
	}
	return cand[:k]
}

func TestRepairIncrementalValidTree(t *testing.T) {
	for _, k := range []int{1, 3, 8} {
		in, res, _ := splitInstance(t, 90+int64(k), 56, 0)
		failed := pickFailures(res.Tree, k, 7)
		rres, err := RepairIncremental(context.Background(), in, res.Tree, failed, InitConfig{Seed: 21})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rres.Incremental {
			t.Fatalf("k=%d: result not flagged incremental", k)
		}
		if got, want := len(rres.Tree.Nodes), 56-k; got != want {
			t.Fatalf("k=%d: %d survivors, want %d", k, got, want)
		}
		checkFullBiTree(t, in, rres.Tree)
		if rres.SplicedLinks == 0 {
			t.Errorf("k=%d: nothing spliced", k)
		}
	}
}

// TestRepairIncrementalSplicesVerbatim pins the point of the fast path:
// apart from cascade-bumped ancestors (each bump is a deliberate
// re-placement, counted in PlacedLinks), surviving links keep their relative
// schedule order — gap insertion is order-preserving. Concretely: sorting
// the kept links by old stamp, their new stamps contain a non-decreasing
// subsequence covering all but the bumped ones.
func TestRepairIncrementalSplicesVerbatim(t *testing.T) {
	in, res, _ := splitInstance(t, 95, 48, 0)
	failed := pickFailures(res.Tree, 4, 3)
	before := make(map[sinr.Link]int)
	for _, tl := range res.Tree.Up {
		before[tl.L] = tl.Slot
	}
	rres, err := RepairIncremental(context.Background(), in, res.Tree, failed, InitConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	var kept []tree.TimedLink
	for _, tl := range rres.Tree.Up {
		if _, ok := before[tl.L]; ok {
			kept = append(kept, tl)
		}
	}
	fresh := len(rres.Tree.Up) - len(kept)
	bumped := rres.PlacedLinks - fresh
	if bumped < 0 {
		t.Fatalf("accounting broken: PlacedLinks=%d, fresh links=%d", rres.PlacedLinks, fresh)
	}
	sort.Slice(kept, func(a, b int) bool {
		if before[kept[a].L] != before[kept[b].L] {
			return before[kept[a].L] < before[kept[b].L]
		}
		return kept[a].Slot < kept[b].Slot
	})
	// Longest non-decreasing subsequence of the new stamps.
	var tails []int
	for _, tl := range kept {
		pos := sort.Search(len(tails), func(i int) bool { return tails[i] > tl.Slot })
		if pos == len(tails) {
			tails = append(tails, tl.Slot)
		} else {
			tails[pos] = tl.Slot
		}
	}
	if len(tails) < len(kept)-bumped {
		t.Fatalf("only %d of %d kept links preserved order; %d bumps cannot explain it",
			len(tails), len(kept), bumped)
	}
}

// TestRepairIncrementalMatchesFullRepair checks semantic equivalence with
// the restamp path: same survivors, both valid, both feasible.
func TestRepairIncrementalMatchesFullRepair(t *testing.T) {
	in, res, _ := splitInstance(t, 96, 52, 0)
	failed := pickFailures(res.Tree, 5, 5)
	inc, err := RepairIncremental(context.Background(), in, res.Tree, failed, InitConfig{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Repair(context.Background(), in, res.Tree, failed, InitConfig{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Tree.Nodes) != len(full.Tree.Nodes) {
		t.Fatalf("incremental spans %d, full %d", len(inc.Tree.Nodes), len(full.Tree.Nodes))
	}
	if inc.NewRoot != full.NewRoot {
		t.Fatalf("roots diverged: %d vs %d", inc.NewRoot, full.NewRoot)
	}
	checkFullBiTree(t, in, inc.Tree)
	checkFullBiTree(t, in, full.Tree)
	if inc.ScheduleLength < full.ScheduleLength {
		// Not an error — just sanity that Compact ran (incremental may be
		// longer from fragmentation, never accidentally "shorter than
		// possible" by dropping links).
		if len(inc.Tree.Up) != len(full.Tree.Up) {
			t.Fatalf("link counts diverged: %d vs %d", len(inc.Tree.Up), len(full.Tree.Up))
		}
	}
}

func TestRepairIncrementalRootFailure(t *testing.T) {
	in, res, _ := splitInstance(t, 97, 40, 0)
	rres, err := RepairIncremental(context.Background(), in, res.Tree, []int{res.Tree.Root}, InitConfig{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if rres.NewRoot == res.Tree.Root {
		t.Fatal("failed root still root")
	}
	checkFullBiTree(t, in, rres.Tree)
}

func TestRepairIncrementalDuplicatesAndIteration(t *testing.T) {
	// Iterated incremental repairs (the streaming-churn shape): each step
	// feeds the previous spliced tree back in, with duplicated victims.
	in, res, _ := splitInstance(t, 98, 60, 0)
	cur := res.Tree
	for step := 0; step < 6 && len(cur.Nodes) > 10; step++ {
		failed := pickFailures(cur, 2, int64(step))
		failed = append(failed, failed[0]) // duplicate on purpose
		rres, err := RepairIncremental(context.Background(), in, cur, failed, InitConfig{Seed: 30 + int64(step)})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		cur = rres.Tree
		checkFullBiTree(t, in, cur)
	}
}

func TestMoveIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := workload.UniformDensity(rng, 48, 0.15)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	res, err := Init(context.Background(), in, InitConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Move three nodes to fresh positions clear of the existing set.
	moved := pickFailures(res.Tree, 3, 1)
	newPts := append([]geom.Point(nil), pts...)
	for i, v := range moved {
		newPts[v] = geom.Point{X: 500 + 3*float64(i), Y: float64(2 * i)}
	}
	in2 := sinr.MustInstance(newPts, sinr.DefaultParams())
	rres, err := MoveIncremental(context.Background(), in2, res.Tree, moved, InitConfig{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rres.Tree.Nodes), len(res.Tree.Nodes); got != want {
		t.Fatalf("mobility step changed population: %d vs %d", got, want)
	}
	present := make(map[int]bool, len(rres.Tree.Nodes))
	for _, v := range rres.Tree.Nodes {
		present[v] = true
	}
	for _, v := range moved {
		if !present[v] {
			t.Fatalf("moved node %d missing after step", v)
		}
	}
	checkFullBiTree(t, in2, rres.Tree)
}

func TestRepairLinksIncremental(t *testing.T) {
	in, res, _ := splitInstance(t, 101, 48, 0)
	bt := res.Tree
	var failed []sinr.Link
	for _, tl := range bt.Up {
		failed = append(failed, tl.L)
		if len(failed) == 3 {
			break
		}
	}
	rres, err := RepairLinksIncremental(context.Background(), in, bt, failed, InitConfig{Seed: 102})
	if err != nil {
		t.Fatal(err)
	}
	checkFullBiTree(t, in, rres.Tree)
	inRepaired := map[sinr.Link]bool{}
	for _, tl := range rres.Tree.Up {
		inRepaired[tl.L] = true
	}
	for _, l := range failed {
		if inRepaired[l] {
			t.Fatalf("failed link %v re-formed", l)
		}
	}
	if got, want := len(rres.Tree.Nodes), len(bt.Nodes); got != want {
		t.Fatalf("link repair changed population: %d vs %d", got, want)
	}
}

func TestJoinMuteExcludesTargets(t *testing.T) {
	// Every member except the root is muted: all joiners must attach
	// directly to the root or to each other — never INTO a muted member.
	in, res, joiners := splitInstance(t, 103, 40, 6)
	var mute []int
	for _, v := range res.Tree.Nodes {
		if v != res.Tree.Root {
			mute = append(mute, v)
		}
	}
	jres, err := Join(context.Background(), in, res.Tree, joiners, InitConfig{Seed: 104, Mute: mute})
	if err != nil {
		t.Skipf("join under heavy muting did not converge (legal): %v", err)
	}
	muted := make(map[int]bool, len(mute))
	for _, v := range mute {
		muted[v] = true
	}
	joinSet := make(map[int]bool, len(joiners))
	for _, j := range joiners {
		joinSet[j] = true
	}
	for _, tl := range jres.Tree.Up {
		if joinSet[tl.L.From] && muted[tl.L.To] {
			t.Fatalf("joiner %d attached into muted member %d", tl.L.From, tl.L.To)
		}
	}
}
