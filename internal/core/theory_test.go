package core

// Tests of the analysis machinery the proofs lean on: the amenability
// functional of feasible sets (Kesselheim SODA'11, Thm 1, used as Eqn 5 in
// the paper), the C-independence structure of sparse sets (Appendix A),
// and the mean-power average affectance of the low-degree core (Lemma 14).

import (
	"context"
	"testing"

	"sinrconn/internal/power"
	"sinrconn/internal/sinr"
	"sinrconn/internal/sparsity"
)

// TestAmenabilityBoundedOnFeasibleSets checks the Eqn-5 ingredient of
// Theorem 20: for a feasible link set R, f_ℓ(R) is bounded by a constant
// for every link ℓ. We build feasible sets via CentralCapacity (which
// guarantees power-control feasibility) and measure the functional.
func TestAmenabilityBoundedOnFeasibleSets(t *testing.T) {
	worst := 0.0
	for seed := int64(0); seed < 5; seed++ {
		in := uniformInstance(t, 90+seed, 64)
		ires, err := Init(context.Background(), in, InitConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sub := LowDegreeSubset(ires.Tree, 0)
		links := make([]sinr.Link, len(sub))
		for i, tl := range sub {
			links[i] = tl.L
		}
		feasible := CentralCapacity(in, links, 0)
		if len(feasible) < 2 {
			continue
		}
		// Certify feasibility first (the premise of the bound).
		if _, _, err := power.Solve(in, feasible, power.Options{Slack: 1.01}); err != nil {
			t.Fatalf("seed %d: premise broken: %v", seed, err)
		}
		maxLen := 0.0
		for _, l := range feasible {
			if ln := in.Length(l); ln > maxLen {
				maxLen = ln
			}
		}
		uni := sinr.UniformFor(in.Params(), maxLen)
		lin := sinr.NoiseSafeLinear(in.Params())
		// f_ℓ(R) for every ℓ in the instance's candidate pool.
		for _, l := range links {
			f := 0.0
			for _, o := range feasible {
				f += in.AmenabilityF(l, o, uni, lin)
			}
			if f > worst {
				worst = f
			}
		}
	}
	// "O(1)" with our τ: generous constant bound.
	if worst > 12 {
		t.Errorf("amenability functional reached %v on feasible sets (want O(1))", worst)
	}
	if worst == 0 {
		t.Error("functional never exercised")
	}
}

// TestIndependencePartitionConstantOnSparseCore checks Lemma 23's engine:
// the O(1)-sparse low-degree core partitions into a bounded number of
// C-independent classes, independent of n.
func TestIndependencePartitionConstantOnSparseCore(t *testing.T) {
	var counts []int
	for _, n := range []int{32, 64, 128} {
		in := uniformInstance(t, int64(95+n), n)
		ires, err := Init(context.Background(), in, InitConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sub := LowDegreeSubset(ires.Tree, 0)
		links := make([]sinr.Link, len(sub))
		for i, tl := range sub {
			links[i] = tl.L
		}
		classes := sparsity.IndependentPartition(in, links, 2)
		counts = append(counts, len(classes))
	}
	// Bounded and not growing drastically with n.
	for _, c := range counts {
		if c > 24 {
			t.Fatalf("partition classes = %v (want O(1) per size)", counts)
		}
	}
	if counts[2] > 3*counts[0]+6 {
		t.Errorf("class count grows with n: %v", counts)
	}
}

// TestLemma14AvgAffectanceOrderUpsilon checks Lemma 14's shape: the
// average in-affectance of T(M) under mean power is O(Υ) — concretely,
// avg/Υ stays below a constant across sizes.
func TestLemma14AvgAffectanceOrderUpsilon(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		in := uniformInstance(t, int64(99+n), n)
		ires, err := Init(context.Background(), in, InitConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		sub := LowDegreeSubset(ires.Tree, 0)
		links := make([]sinr.Link, len(sub))
		for i, tl := range sub {
			links[i] = tl.L
		}
		pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
		avg := in.AvgAffectance(links, pa)
		norm := avg / in.Upsilon()
		if norm > 2.0 {
			t.Errorf("n=%d: avg affectance %v = %v·Υ (want O(Υ) with small constant)",
				n, avg, norm)
		}
	}
}

// TestEqn3ImpliesPowerSolvable is the bridge of Section 8.2.3: sets
// maintained under the Eqn-3 invariant (with our τ) always admit a
// feasible power vector. Verified over many Distr-Cap runs.
func TestEqn3ImpliesPowerSolvable(t *testing.T) {
	fails := 0
	runs := 0
	for seed := int64(0); seed < 8; seed++ {
		in := uniformInstance(t, 200+seed, 48)
		ires, err := Init(context.Background(), in, InitConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sub := LowDegreeSubset(ires.Tree, 0)
		links := make([]sinr.Link, len(sub))
		for i, tl := range sub {
			links[i] = tl.L
		}
		d := DistrCap(in, links, DistrCapConfig{Seed: seed, Repeats: 3})
		if len(d.Selected) == 0 {
			continue
		}
		runs++
		if !Eqn3Holds(in, d.Selected, DefaultDistrTau) {
			t.Fatalf("seed %d: invariant broken", seed)
		}
		if _, _, err := power.Solve(in, d.Selected, power.Options{Slack: 1.01}); err != nil {
			fails++
		}
	}
	if runs == 0 {
		t.Fatal("no runs selected anything")
	}
	if fails > 0 {
		t.Errorf("%d of %d invariant-satisfying sets were not power-solvable", fails, runs)
	}
}
