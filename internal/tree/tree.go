package tree

import (
	"fmt"
	"sort"

	"sinrconn/internal/sinr"
)

// TimedLink is a directed link together with the slot it is scheduled in and
// the transmission power its sender uses in that slot.
type TimedLink struct {
	L     sinr.Link
	Slot  int
	Power float64
}

// BiTree is the paper's Definition 1: an aggregation tree (all links
// oriented toward Root, each link scheduled after all links of its sender's
// descendants) together with the complementary dissemination tree obtained
// by reversing every link and running the schedule in opposite order.
//
// Up holds the aggregation links (x → parent(x)). The dissemination links
// are the duals of Up and are derived, not stored.
type BiTree struct {
	// Root is the node index at which aggregation terminates.
	Root int
	// Nodes lists the node indices the tree spans, including Root.
	Nodes []int
	// Up holds one aggregation link per non-root node.
	Up []TimedLink
}

// NumSlots returns the schedule length: the number of distinct slots used
// by the aggregation links.
func (t *BiTree) NumSlots() int {
	seen := make(map[int]struct{}, len(t.Up))
	for _, tl := range t.Up {
		seen[tl.Slot] = struct{}{}
	}
	return len(seen)
}

// SlotSpan returns the inclusive range [min, max] of slot stamps, or (0,-1)
// for an empty tree.
func (t *BiTree) SlotSpan() (min, max int) {
	if len(t.Up) == 0 {
		return 0, -1
	}
	min, max = t.Up[0].Slot, t.Up[0].Slot
	for _, tl := range t.Up[1:] {
		if tl.Slot < min {
			min = tl.Slot
		}
		if tl.Slot > max {
			max = tl.Slot
		}
	}
	return min, max
}

// Compact renumbers the slot stamps to 1..k (preserving order) and returns
// k, the schedule length. Construction protocols stamp links with raw
// simulator slot indices, which are sparse; Compact turns them into the
// dense schedule the paper counts.
func (t *BiTree) Compact() int {
	if len(t.Up) == 0 {
		return 0
	}
	stamps := make([]int, 0, len(t.Up))
	seen := make(map[int]struct{}, len(t.Up))
	for _, tl := range t.Up {
		if _, ok := seen[tl.Slot]; !ok {
			seen[tl.Slot] = struct{}{}
			stamps = append(stamps, tl.Slot)
		}
	}
	sort.Ints(stamps)
	remap := make(map[int]int, len(stamps))
	for i, s := range stamps {
		remap[s] = i + 1
	}
	for i := range t.Up {
		t.Up[i].Slot = remap[t.Up[i].Slot]
	}
	return len(stamps)
}

// Parent returns a map from node to its aggregation parent. The root is
// absent from the map.
func (t *BiTree) Parent() map[int]int {
	m := make(map[int]int, len(t.Up))
	for _, tl := range t.Up {
		m[tl.L.From] = tl.L.To
	}
	return m
}

// Children returns a map from node to its aggregation children.
func (t *BiTree) Children() map[int][]int {
	m := make(map[int][]int)
	for _, tl := range t.Up {
		m[tl.L.To] = append(m[tl.L.To], tl.L.From)
	}
	return m
}

// Down returns the dissemination links: duals of Up with the schedule
// reversed (slot s becomes maxSlot+minSlot-s), satisfying the dissemination
// ordering whenever Up satisfies the aggregation ordering.
func (t *BiTree) Down() []TimedLink {
	min, max := t.SlotSpan()
	out := make([]TimedLink, len(t.Up))
	for i, tl := range t.Up {
		out[i] = TimedLink{L: tl.L.Dual(), Slot: max + min - tl.Slot, Power: tl.Power}
	}
	return out
}

// Degrees returns the number of links (in either direction, counting the
// up-link and implicitly its dual once) incident to each node — the paper's
// node degree |L_u| divided by the dual double-count. Concretely this is
// the undirected tree degree.
func (t *BiTree) Degrees() map[int]int {
	deg := make(map[int]int)
	for _, tl := range t.Up {
		deg[tl.L.From]++
		deg[tl.L.To]++
	}
	return deg
}

// MaxDegree returns the maximum node degree, or 0 for an empty tree.
func (t *BiTree) MaxDegree() int {
	max := 0
	for _, d := range t.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// Links returns the bare link set of the aggregation side.
func (t *BiTree) Links() []sinr.Link {
	out := make([]sinr.Link, len(t.Up))
	for i, tl := range t.Up {
		out[i] = tl.L
	}
	return out
}

// PowerTable returns a PerLink assignment recording the powers stamped on
// the aggregation links and, symmetrically, on their duals.
func (t *BiTree) PowerTable() sinr.PerLink {
	pl := sinr.NewPerLink(nil)
	for _, tl := range t.Up {
		pl.Table[tl.L] = tl.Power
		pl.Table[tl.L.Dual()] = tl.Power
	}
	return pl
}

// Validate checks the structural tree properties: every non-root node in
// Nodes has exactly one up-link, the root has none, every link endpoint is
// in Nodes, and following parents from any node reaches Root acyclically.
func (t *BiTree) Validate() error {
	inNodes := make(map[int]bool, len(t.Nodes))
	for _, v := range t.Nodes {
		if inNodes[v] {
			return fmt.Errorf("tree: duplicate node %d", v)
		}
		inNodes[v] = true
	}
	if !inNodes[t.Root] {
		return fmt.Errorf("tree: root %d not in node set", t.Root)
	}
	parent := make(map[int]int, len(t.Up))
	for _, tl := range t.Up {
		if !inNodes[tl.L.From] || !inNodes[tl.L.To] {
			return fmt.Errorf("tree: link %v leaves node set", tl.L)
		}
		if tl.L.From == tl.L.To {
			return fmt.Errorf("tree: self-loop at %d", tl.L.From)
		}
		if _, dup := parent[tl.L.From]; dup {
			return fmt.Errorf("tree: node %d has two up-links", tl.L.From)
		}
		parent[tl.L.From] = tl.L.To
	}
	if _, bad := parent[t.Root]; bad {
		return fmt.Errorf("tree: root %d has an up-link", t.Root)
	}
	if len(parent) != len(t.Nodes)-1 {
		return fmt.Errorf("tree: %d up-links for %d nodes", len(parent), len(t.Nodes))
	}
	// Walk every node to the root; cycle detection by step count.
	for _, v := range t.Nodes {
		steps := 0
		for v != t.Root {
			p, ok := parent[v]
			if !ok {
				return fmt.Errorf("tree: node %d has no path to root", v)
			}
			v = p
			steps++
			if steps > len(t.Nodes) {
				return fmt.Errorf("tree: cycle detected")
			}
		}
	}
	return nil
}

// ValidateOrdering checks the aggregation-tree scheduling property: each
// link (x, y) is scheduled strictly after every link of x's descendants.
// The local condition slot(out(x)) > slot(out(c)) for every child c of x is
// equivalent by transitivity.
func (t *BiTree) ValidateOrdering() error {
	outSlot := make(map[int]int, len(t.Up))
	for _, tl := range t.Up {
		outSlot[tl.L.From] = tl.Slot
	}
	for _, tl := range t.Up {
		child := tl.L.From
		parent := tl.L.To
		if parent == t.Root {
			continue
		}
		pSlot, ok := outSlot[parent]
		if !ok {
			return fmt.Errorf("tree: non-root node %d has no out-link", parent)
		}
		if pSlot <= tl.Slot {
			return fmt.Errorf("tree: ordering violated: out(%d) slot %d ≤ out(%d) slot %d",
				parent, pSlot, child, tl.Slot)
		}
	}
	return nil
}

// ValidatePerSlotFeasible groups the aggregation links by slot and checks
// that each group is SINR-feasible under the stamped powers — the property
// that makes the slot stamps an actual schedule. Links are bucketed with a
// counting sort over the slot range and one set of scratch buffers is reused
// across groups, so validation of large trees stays allocation-light and
// rides the sinr gain table for the physics.
func (t *BiTree) ValidatePerSlotFeasible(in *sinr.Instance) error {
	scratch := feasScratch{}
	return t.validateSlots(func(links []sinr.Link, powers []float64) (bool, error) {
		return in.SINRFeasibleBuf(links, powers, scratch.txs(len(links)))
	})
}

// ValidatePerSlotFeasibleFar is ValidatePerSlotFeasible under the far-field
// approximation plan f (flat grid or quadtree): each slot group is checked
// with sinr.Instance.SINRFeasibleFarBuf, which accepts a (1±ε) guard band at
// the β cut (ε = f.CertifiedMaxRelError). The check never rejects a schedule
// the exact validator accepts; a schedule it rejects is exactly infeasible.
// A nil f is the exact check.
func (t *BiTree) ValidatePerSlotFeasibleFar(in *sinr.Instance, f sinr.Far) error {
	if f == nil {
		return t.ValidatePerSlotFeasible(in)
	}
	sc := f.AcquireResolver()
	defer f.ReleaseResolver(sc)
	scratch := feasScratch{}
	return t.validateSlots(func(links []sinr.Link, powers []float64) (bool, error) {
		return in.SINRFeasibleFarBuf(links, powers, f, scratch.txs(len(links)), sc)
	})
}

// feasScratch reuses one Tx buffer across a validation's slot groups.
type feasScratch struct{ buf []sinr.Tx }

func (s *feasScratch) txs(n int) []sinr.Tx {
	if cap(s.buf) < n {
		s.buf = make([]sinr.Tx, n)
	}
	return s.buf[:n]
}

// validateSlots buckets the aggregation links by slot (counting sort over
// the slot range, with a map fallback for degenerately sparse stamps) and
// applies check to each group, reporting the first infeasible slot.
func (t *BiTree) validateSlots(check func(links []sinr.Link, powers []float64) (bool, error)) error {
	if len(t.Up) == 0 {
		return nil
	}
	minSlot, maxSlot := t.Up[0].Slot, t.Up[0].Slot
	for _, tl := range t.Up {
		if tl.Slot < minSlot {
			minSlot = tl.Slot
		}
		if tl.Slot > maxSlot {
			maxSlot = tl.Slot
		}
	}
	// Counting sort by slot: offsets[s] is the start of slot s's group.
	span := maxSlot - minSlot + 1
	if span > 16*len(t.Up)+1024 {
		// Degenerate sparse stamps; bucket through a map instead.
		return t.validateSlotsSparse(check)
	}
	counts := make([]int, span+1)
	for _, tl := range t.Up {
		counts[tl.Slot-minSlot+1]++
	}
	maxGroup := 0
	for s := 0; s < span; s++ {
		if counts[s+1] > maxGroup {
			maxGroup = counts[s+1]
		}
		counts[s+1] += counts[s]
	}
	ordered := make([]TimedLink, len(t.Up))
	fill := make([]int, span)
	copy(fill, counts[:span])
	for _, tl := range t.Up {
		s := tl.Slot - minSlot
		ordered[fill[s]] = tl
		fill[s]++
	}
	links := make([]sinr.Link, maxGroup)
	powers := make([]float64, maxGroup)
	for s := 0; s < span; s++ {
		group := ordered[counts[s]:counts[s+1]]
		if len(group) == 0 {
			continue
		}
		for i, tl := range group {
			links[i] = tl.L
			powers[i] = tl.Power
		}
		ok, err := check(links[:len(group)], powers[:len(group)])
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tree: slot %d is not SINR-feasible (%d links)", s+minSlot, len(group))
		}
	}
	return nil
}

// validateSlotsSparse is the map-bucketed fallback for trees whose slot
// stamps are far sparser than the link count.
func (t *BiTree) validateSlotsSparse(check func(links []sinr.Link, powers []float64) (bool, error)) error {
	bySlot := make(map[int][]TimedLink)
	for _, tl := range t.Up {
		bySlot[tl.Slot] = append(bySlot[tl.Slot], tl)
	}
	for slot, group := range bySlot {
		links := make([]sinr.Link, len(group))
		powers := make([]float64, len(group))
		for i, tl := range group {
			links[i] = tl.L
			powers[i] = tl.Power
		}
		ok, err := check(links, powers)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tree: slot %d is not SINR-feasible (%d links)", slot, len(links))
		}
	}
	return nil
}

// StronglyConnected reports whether the union of the up-links and their
// duals strongly connects Nodes. For a valid tree this is implied, but the
// check is independent of Validate and is what Theorem 2 literally claims.
func (t *BiTree) StronglyConnected() bool {
	if len(t.Nodes) == 0 {
		return false
	}
	adj := make(map[int][]int, len(t.Nodes))
	for _, tl := range t.Up {
		adj[tl.L.From] = append(adj[tl.L.From], tl.L.To)
		adj[tl.L.To] = append(adj[tl.L.To], tl.L.From)
	}
	// With symmetric links, strong connectivity reduces to reachability.
	seen := map[int]bool{t.Root: true}
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, v := range t.Nodes {
		if !seen[v] {
			return false
		}
	}
	return true
}
