package sinr_test

// Far-field approximation suite. Three layers, all Type 1 (deterministic;
// one failure = bug):
//
//  1. Plan lockstep — the kernel's plan derivation (k, cell, grid dims,
//     binning) must equal the oracle's independent naive transcription
//     exactly (integer and float equality).
//  2. Differential — the kernel's far-field SINR must match the oracle's
//     brute-force tiled reference to 1e-12 relative across the scenario
//     matrix × α.
//  3. Certified bound — the far-field SINR must bracket the *exact* oracle
//     SINR within the plan's certified ε, the bound WithMaxRelError
//     promises; and the guard-banded feasibility check must never reject a
//     schedule the exact check accepts.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

var farEpsSweep = []float64{0.25, 1.0, 2.5}

// farTxSet builds a sender set with distinct senders (the LinkSINR
// contract) at powers spanning comfortably-feasible to marginal.
func farTxSet(rng *rand.Rand, in *sinr.Instance, m int) []sinr.Tx {
	p := in.Params()
	n := in.Len()
	used := map[int]bool{}
	txs := make([]sinr.Tx, 0, m)
	for len(txs) < m && len(used) < n {
		s := rng.Intn(n)
		if used[s] {
			continue
		}
		used[s] = true
		txs = append(txs, sinr.Tx{Sender: s, Power: p.SafePower(1+rng.Float64()*8) * (0.5 + 2*rng.Float64())})
	}
	return txs
}

// TestFarFieldPlanLockstep pins the kernel plan derivation to the oracle's
// independent transcription: same k, same cell, same grid, same binning.
func TestFarFieldPlanLockstep(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for _, eps := range farEpsSweep {
					pts, in := diffInstance(t, spec, alpha, 5, 48)
					f, err := in.FarField(eps)
					if err != nil {
						t.Fatal(err)
					}
					op := oracle.FarPlanFor(pts, alpha, eps)
					if f.K() != op.K || f.Cell() != op.Cell {
						t.Fatalf("eps %v: kernel plan (k=%d cell=%v) oracle plan (k=%d cell=%v)",
							eps, f.K(), f.Cell(), op.K, op.Cell)
					}
					if f.Tiles() != op.Cols*op.Rows {
						t.Fatalf("eps %v: kernel %d tiles, oracle %d×%d", eps, f.Tiles(), op.Cols, op.Rows)
					}
					if got, want := f.CertifiedMaxRelError(), oracle.FarCertifiedErr(op.K, alpha); got != want {
						t.Fatalf("eps %v: certified error kernel %v oracle %v", eps, got, want)
					}
					if f.CertifiedMaxRelError() > eps && f.K() > 2 {
						t.Fatalf("eps %v: certified error %v exceeds requested bound at k=%d",
							eps, f.CertifiedMaxRelError(), f.K())
					}
					if f.Cell() < 1 {
						t.Fatalf("eps %v: cell %v below the min-distance normalization", eps, f.Cell())
					}
				}
			})
		}
	}
}

// TestDifferentialFarFieldVsOracle pins the kernel's far-field LinkSINR to
// the oracle's brute-force tiled reference at 1e-12 relative.
func TestDifferentialFarFieldVsOracle(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					n := 40 + int(seed)*8
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 271))
					for _, eps := range farEpsSweep {
						f, err := in.FarField(eps)
						if err != nil {
							t.Fatal(err)
						}
						sc := f.NewScratch()
						txs := farTxSet(rng, in, n/2)
						f.Accumulate(txs, sc)
						for trial := 0; trial < 12; trial++ {
							tx := txs[rng.Intn(len(txs))]
							l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
							if l.From == l.To {
								continue
							}
							got := f.LinkSINR(txs, l, tx.Power, sc)
							want := oracle.FarLinkSINR(pts, p, eps, txs, l, tx.Power)
							if !diffClose(got, want) {
								t.Fatalf("seed %d eps %v LinkSINR(%v): kernel %v oracle %v",
									seed, eps, l, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestFarFieldErrorBound asserts the contract WithMaxRelError sells: the
// far-field SINR stays within the certified (1±ε) bracket of the *exact*
// physics (oracle-computed), across the scenario matrix × α × ε.
func TestFarFieldErrorBound(t *testing.T) {
	const slack = 1e-9 // floating headroom on the analytic bound
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 2; seed++ {
					n := 64
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 613))
					for _, eps := range farEpsSweep {
						f, err := in.FarField(eps)
						if err != nil {
							t.Fatal(err)
						}
						ce := f.CertifiedMaxRelError()
						sc := f.NewScratch()
						txs := farTxSet(rng, in, n/2)
						f.Accumulate(txs, sc)
						for _, tx := range txs {
							for trial := 0; trial < 4; trial++ {
								l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
								if l.From == l.To {
									continue
								}
								far := f.LinkSINR(txs, l, tx.Power, sc)
								// The certified bound is on the interference
								// sum: I_far ∈ [(1−ε)·I, (1+ε)·I] (clamped at
								// 0), with signal and noise exact. Bound the
								// SINR through it so the bracket stays valid
								// for certified ε ≥ 1.
								signal := tx.Power / oracle.PathLoss(oracle.Dist(pts, l.From, l.To), p.Alpha)
								interf := 0.0
								for _, w := range txs {
									if w.Sender == l.From {
										continue
									}
									interf += w.Power / oracle.PathLoss(oracle.Dist(pts, w.Sender, l.To), p.Alpha)
								}
								if math.IsInf(signal, 1) || math.IsInf(interf, 1) {
									continue // co-located degeneracies
								}
								loI := (1 - ce) * interf
								if loI < 0 {
									loI = 0
								}
								lo := signal / (p.Noise + (1+ce)*interf) * (1 - slack)
								hi := signal / (p.Noise + loI) * (1 + slack)
								if far < lo || far > hi {
									t.Fatalf("seed %d eps %v (cert %v) SINR(%v): far %v outside [%v, %v] (signal %v interf %v)",
										seed, eps, ce, l, far, lo, hi, signal, interf)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestFarFeasibilityGuardBand asserts the guard-band semantics of the
// far-field feasibility check: it never rejects a schedule the exact check
// accepts (completeness), a rejection certifies exact infeasibility below
// the band, and the decision matches the oracle's naive transcription.
func TestFarFeasibilityGuardBand(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					pts, in := diffInstance(t, spec, alpha, seed, 32)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 839))
					for _, eps := range farEpsSweep {
						f, err := in.FarField(eps)
						if err != nil {
							t.Fatal(err)
						}
						sc := f.NewScratch()
						for trial := 0; trial < 10; trial++ {
							links, powers := randomLinkSet(rng, in, 1+rng.Intn(6))
							farOK, err := in.SINRFeasibleFarBuf(links, powers, f, nil, sc)
							if err != nil {
								t.Fatal(err)
							}
							exactOK, err := in.SINRFeasible(links, powers)
							if err != nil {
								t.Fatal(err)
							}
							if exactOK && !farOK {
								t.Fatalf("seed %d eps %v: far check rejected an exactly-feasible schedule %v",
									seed, eps, links)
							}
							oOK, err := oracle.FarSINRFeasible(pts, p, eps, links, powers)
							if err != nil {
								t.Fatal(err)
							}
							if farOK != oOK {
								t.Fatalf("seed %d eps %v: far feasibility kernel %v oracle %v on %v",
									seed, eps, farOK, oOK, links)
							}
						}
					}
				}
			})
		}
	}
}

// TestFarFieldResolveWinnerExact asserts Resolve's refinement contract: the
// decoded winner and its received power are exactly the strongest sender —
// never perturbed by the approximation — including when the strongest
// sender sits far outside the near ring.
func TestFarFieldResolveWinnerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := workload.UniformSeeded(42, 300)
	p := sinr.DefaultParams()
	in := sinr.MustInstance(pts, p)
	f, err := in.FarField(1.0)
	if err != nil {
		t.Fatal(err)
	}
	sc := f.NewScratch()
	for trial := 0; trial < 50; trial++ {
		txs := farTxSet(rng, in, 60)
		// Crank one distant sender's power so the true winner at many
		// listeners lies in the far field, forcing refinement.
		txs[0].Power *= 1e6
		f.Accumulate(txs, sc)
		for probe := 0; probe < 20; probe++ {
			v := rng.Intn(in.Len())
			listening := true
			for _, tx := range txs {
				if tx.Sender == v {
					listening = false
					break
				}
			}
			if !listening {
				continue
			}
			best, bestRP, total, sat := f.Resolve(v, txs, sc)
			if sat {
				t.Fatalf("unexpected saturation at %d", v)
			}
			wantBest, wantRP := -1, 0.0
			exactTotal := 0.0
			for k, tx := range txs {
				rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
				exactTotal += rp
				if rp > wantRP {
					wantRP = rp
					wantBest = k
				}
			}
			if best != wantBest {
				t.Fatalf("trial %d listener %d: winner %d (rp %v), exact argmax %d (rp %v)",
					trial, v, best, bestRP, wantBest, wantRP)
			}
			if !diffClose(bestRP, wantRP) {
				t.Fatalf("trial %d listener %d: winner rp %v, exact %v", trial, v, bestRP, wantRP)
			}
			ce := f.CertifiedMaxRelError()
			if total < exactTotal*(1-ce)*(1-1e-9) || total > exactTotal*(1+ce)*(1+1e-9) {
				t.Fatalf("trial %d listener %d: total %v outside certified band of exact %v (ε=%v)",
					trial, v, total, exactTotal, ce)
			}
		}
	}
}

// TestFarFieldExtendReuse asserts a plan survives Extend when the grown
// points stay inside the grid (same geometry, new points binned) and is
// rebuilt to a correct plan otherwise.
func TestFarFieldExtendReuse(t *testing.T) {
	pts := workload.UniformSeeded(7, 120)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	f, err := in.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Interior points: the plan must carry over with identical geometry.
	lo, hi := geom.BoundingBox(pts)
	inside := []geom.Point{
		{X: (lo.X + hi.X) / 2.001, Y: (lo.Y + hi.Y) / 2.003},
		{X: lo.X + 1.7, Y: hi.Y - 1.3},
	}
	grown, err := in.Extend(inside)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := grown.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Cell() != f.Cell() || gf.K() != f.K() || gf.Tiles() != f.Tiles() {
		t.Fatalf("interior extend rebuilt the plan: cell %v→%v k %d→%d tiles %d→%d",
			f.Cell(), gf.Cell(), f.K(), gf.K(), f.Tiles(), gf.Tiles())
	}
	// Exterior point: the reused grid no longer covers the set, so the
	// grown instance must derive a fresh plan matching a from-scratch build.
	outside := []geom.Point{{X: hi.X + 50, Y: hi.Y + 50}}
	grown2, err := in.Extend(outside)
	if err != nil {
		t.Fatal(err)
	}
	gf2, err := grown2.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sinr.MustInstance(grown2.Points(), grown2.Params()).FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gf2.Cell() != fresh.Cell() || gf2.Tiles() != fresh.Tiles() {
		t.Fatalf("exterior extend plan (cell %v, %d tiles) differs from fresh build (cell %v, %d tiles)",
			gf2.Cell(), gf2.Tiles(), fresh.Cell(), fresh.Tiles())
	}
}

// TestFarFeasibilityDuplicateSender pins the exported contract: a link set
// with a repeated sender is rejected with ErrDuplicateSender instead of
// silently diverging from the exact check (which sums duplicates).
func TestFarFeasibilityDuplicateSender(t *testing.T) {
	pts := workload.UniformSeeded(3, 16)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	f, err := in.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	links := []sinr.Link{{From: 0, To: 1}, {From: 0, To: 2}}
	powers := []float64{100, 100}
	if _, err := in.SINRFeasibleFarBuf(links, powers, f, nil, f.NewScratch()); !errors.Is(err, sinr.ErrDuplicateSender) {
		t.Fatalf("duplicate-sender set returned %v, want ErrDuplicateSender", err)
	}
}
