package schedule

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

func lineInstance(t testing.TB, xs ...float64) *sinr.Instance {
	t.Helper()
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func scatterInstance(t testing.TB, seed int64, n int, span float64) *sinr.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		cand := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func pairLinks(n int) []sinr.Link {
	var links []sinr.Link
	for i := 0; i+1 < n; i += 2 {
		links = append(links, sinr.Link{From: i, To: i + 1})
	}
	return links
}

func TestFirstFitFarLinksOneSlot(t *testing.T) {
	in := lineInstance(t, 0, 1, 5000, 5001, 10000, 10001)
	links := pairLinks(6)
	slots, bad := FirstFit(in, links, sinr.NoiseSafeLinear(in.Params()), ByLengthDesc)
	if len(bad) != 0 {
		t.Fatalf("unschedulable: %v", bad)
	}
	if len(slots) != 1 {
		t.Fatalf("slots = %d, want 1", len(slots))
	}
	if len(slots[0]) != 3 {
		t.Fatalf("slot size = %d", len(slots[0]))
	}
}

func TestFirstFitNodeConflictSeparated(t *testing.T) {
	// Two links sharing node 1 can never share a slot.
	in := lineInstance(t, 0, 1, 2)
	links := []sinr.Link{{From: 0, To: 1}, {From: 1, To: 2}}
	slots, bad := FirstFit(in, links, sinr.NoiseSafeLinear(in.Params()), ByLengthDesc)
	if len(bad) != 0 {
		t.Fatalf("unschedulable: %v", bad)
	}
	if len(slots) != 2 {
		t.Fatalf("slots = %d, want 2", len(slots))
	}
}

func TestFirstFitSlotsAreFeasible(t *testing.T) {
	in := scatterInstance(t, 3, 40, 60)
	links := pairLinks(40)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	slots, bad := FirstFit(in, links, pa, ByLengthDesc)
	if len(bad) != 0 {
		t.Fatalf("unschedulable: %v", bad)
	}
	total := 0
	for s, group := range slots {
		total += len(group)
		if !in.Feasible(group, pa) {
			t.Errorf("slot %d infeasible", s)
		}
	}
	if total != len(links) {
		t.Errorf("scheduled %d of %d links", total, len(links))
	}
}

func TestFirstFitOrders(t *testing.T) {
	in := scatterInstance(t, 7, 30, 50)
	links := pairLinks(30)
	pa := sinr.NoiseSafeLinear(in.Params())
	for _, order := range []Order{ByLengthAsc, ByLengthDesc} {
		slots, bad := FirstFit(in, links, pa, order)
		if len(bad) != 0 {
			t.Fatalf("order %d unschedulable: %v", order, bad)
		}
		n := 0
		for _, g := range slots {
			n += len(g)
		}
		if n != len(links) {
			t.Errorf("order %d scheduled %d links", order, n)
		}
	}
}

func TestFirstFitUnschedulable(t *testing.T) {
	in := lineInstance(t, 0, 10)
	links := []sinr.Link{{From: 0, To: 1}}
	// Power far below the noise floor: the link can never be feasible.
	slots, bad := FirstFit(in, links, sinr.Uniform{P: 1e-9}, ByLengthDesc)
	if len(slots) != 0 || len(bad) != 1 {
		t.Fatalf("slots=%d bad=%d, want 0/1", len(slots), len(bad))
	}
}

func TestDistributedSchedulesAll(t *testing.T) {
	in := scatterInstance(t, 11, 30, 60)
	links := pairLinks(30)
	pa := sinr.NoiseSafeLinear(in.Params())
	res, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slot) != len(links) {
		t.Fatalf("scheduled %d of %d", len(res.Slot), len(links))
	}
	if res.NumSlots < 1 || res.NumSlots > res.SlotPairs {
		t.Errorf("NumSlots=%d SlotPairs=%d", res.NumSlots, res.SlotPairs)
	}
	// Links sharing a compacted slot succeeded concurrently; verify
	// feasibility of each group under pa.
	groups := map[int][]sinr.Link{}
	for l, s := range res.Slot {
		groups[s] = append(groups[s], l)
	}
	for s, g := range groups {
		if !in.Feasible(g, pa) {
			t.Errorf("slot %d not feasible: %v", s, g)
		}
	}
}

func TestDistributedDeterministic(t *testing.T) {
	in := scatterInstance(t, 13, 20, 50)
	links := pairLinks(20)
	pa := sinr.NoiseSafeLinear(in.Params())
	a, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSlots != b.NumSlots || a.SlotPairs != b.SlotPairs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for l, s := range a.Slot {
		if b.Slot[l] != s {
			t.Fatalf("slot mismatch for %v", l)
		}
	}
}

func TestDistributedSharedSenderMultiplexed(t *testing.T) {
	// Node 0 is the sender of two links; they must end up in different
	// slots and both get scheduled.
	in := lineInstance(t, 0, 2, 4)
	links := []sinr.Link{{From: 0, To: 1}, {From: 0, To: 2}}
	pa := sinr.NoiseSafeLinear(in.Params())
	res, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slot) != 2 {
		t.Fatalf("scheduled %d of 2", len(res.Slot))
	}
	if res.Slot[links[0]] == res.Slot[links[1]] {
		t.Error("shared-sender links share a slot")
	}
}

func TestDistributedEmptyAndErrors(t *testing.T) {
	in := lineInstance(t, 0, 2)
	res, err := Distributed(context.Background(), in, nil, sinr.NoiseSafeLinear(in.Params()), DistConfig{})
	if err != nil || len(res.Slot) != 0 {
		t.Errorf("empty run: %v %v", res, err)
	}
	if _, err := Distributed(context.Background(), in, []sinr.Link{{From: 1, To: 1}}, sinr.NoiseSafeLinear(in.Params()), DistConfig{}); err == nil {
		t.Error("self-loop accepted")
	}
	// Hopeless power with a tiny budget must report ErrIncomplete.
	_, err = Distributed(context.Background(), in, []sinr.Link{{From: 0, To: 1}}, sinr.Uniform{P: 1e-12},
		DistConfig{MaxSlotPairs: 20})
	if !errors.Is(err, ErrIncomplete) {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
}

func TestDistributedComparableToFirstFit(t *testing.T) {
	// Sanity: the distributed schedule should be within a generous constant
	// factor of the centralized greedy on a moderate instance.
	in := scatterInstance(t, 17, 40, 80)
	links := pairLinks(40)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	ff, bad := FirstFit(in, links, pa, ByLengthDesc)
	if len(bad) != 0 {
		t.Fatalf("unschedulable: %v", bad)
	}
	res, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSlots > 60*len(ff)+60 {
		t.Errorf("distributed %d slots vs centralized %d", res.NumSlots, len(ff))
	}
}

func BenchmarkFirstFit(b *testing.B) {
	in := scatterInstance(b, 1, 100, 120)
	links := pairLinks(100)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FirstFit(in, links, pa, ByLengthDesc)
	}
}

func BenchmarkDistributed(b *testing.B) {
	in := scatterInstance(b, 2, 60, 100)
	links := pairLinks(60)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecayVsFixedProbability(t *testing.T) {
	// Decay=1 disables backoff (pure slotted-ALOHA at Q0). Both modes must
	// terminate; the adaptive default should not be drastically worse, and
	// on contended instances it is typically better.
	in := scatterInstance(t, 23, 50, 70)
	links := pairLinks(50)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	var decaySlots, fixedSlots int
	for seed := int64(0); seed < 3; seed++ {
		d, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		decaySlots += d.SlotPairs
		f, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: seed, Decay: 1, Q0: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		fixedSlots += f.SlotPairs
	}
	if decaySlots > 4*fixedSlots+40 {
		t.Errorf("adaptive backoff (%d pairs) much worse than fixed ALOHA (%d pairs)",
			decaySlots, fixedSlots)
	}
}

func TestDistributedStatsExposed(t *testing.T) {
	in := scatterInstance(t, 29, 16, 40)
	links := pairLinks(16)
	pa := sinr.NoiseSafeLinear(in.Params())
	res, err := Distributed(context.Background(), in, links, pa, DistConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Transmissions == 0 || res.Stats.Energy <= 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}
