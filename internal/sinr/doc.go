// Package sinr implements the physical (SINR) interference model of
// Halldórsson & Mitra (PODC 2012), Section 3: reception condition (Eqn 1),
// thresholded affectance, power assignments (uniform, linear, mean,
// arbitrary), feasibility of link sets, and the duality bounds of
// Claim 8.3. It is the physics substrate every protocol in this repository
// runs on.
//
// Two performance layers sit under the model, both value-preserving by
// test:
//
//   - The physics kernel (kernel.go): fast integer/half-integer-α path
//     loss, a lazily built O(n²) gain table capped at 256 MiB with a
//     bit-identical tableless fallback, and memoized per-link constants.
//     See DESIGN.md §2.
//   - The far-field engines behind the shared Far/FarResolver interface,
//     both resolving distant interference by power-weighted centroid mass
//     within a certified worst-case relative error selected via
//     sinrconn.WithMaxRelError, with exact decode winners and guard-banded
//     feasibility: the flat tile grid (farfield.go; one global near-ring
//     radius k(ε, α), DESIGN.md §7) and the hierarchical quadtree
//     (quadtree.go; a Barnes–Hut pyramid whose per-listener opening
//     criterion keeps tight ε sub-quadratic, DESIGN.md §8).
//
// Every quantity is pinned against the deliberately naive reference in
// internal/oracle by the differential suites (differential_test.go,
// farfield_test.go, quadtree_test.go) across the workload scenario matrix.
package sinr
