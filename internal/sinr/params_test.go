package sinr

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{"alpha too small", Params{Alpha: 1.9, Beta: 1, Noise: 1, Epsilon: 0.1}},
		{"zero beta", Params{Alpha: 3, Beta: 0, Noise: 1, Epsilon: 0.1}},
		{"zero noise", Params{Alpha: 3, Beta: 1, Noise: 0, Epsilon: 0.1}},
		{"zero epsilon", Params{Alpha: 3, Beta: 1, Noise: 1, Epsilon: 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.p)
			}
		})
	}
}

func TestValidateAcceptsBoundaryAlpha(t *testing.T) {
	p := DefaultParams()
	p.Alpha = 2 // free-space boundary, exercised by the scenario matrix
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewInstanceRejectsBadParams(t *testing.T) {
	if _, err := NewInstance(nil, Params{}); err == nil {
		t.Fatal("NewInstance with zero params should fail")
	}
}

func TestMustInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstance did not panic on invalid params")
		}
	}()
	MustInstance(nil, Params{})
}

func TestMinAndSafePower(t *testing.T) {
	p := DefaultParams()
	length := 4.0
	// At MinPower the SNR against pure noise is exactly β.
	pw := p.MinPower(length)
	snr := pw / math.Pow(length, p.Alpha) / p.Noise
	if math.Abs(snr-p.Beta) > 1e-9 {
		t.Errorf("SNR at MinPower = %v, want %v", snr, p.Beta)
	}
	// At SafePower it is exactly 2β.
	pw = p.SafePower(length)
	snr = pw / math.Pow(length, p.Alpha) / p.Noise
	if math.Abs(snr-2*p.Beta) > 1e-9 {
		t.Errorf("SNR at SafePower = %v, want %v", snr, 2*p.Beta)
	}
}

func TestLinkDual(t *testing.T) {
	l := Link{From: 3, To: 9}
	d := l.Dual()
	if d != (Link{From: 9, To: 3}) {
		t.Errorf("Dual = %v", d)
	}
	if d.Dual() != l {
		t.Error("Dual is not an involution")
	}
}

func TestInstanceAccessors(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 10, Y: 0}}
	in := MustInstance(pts, DefaultParams())
	if in.Len() != 3 {
		t.Errorf("Len = %d", in.Len())
	}
	if got := in.Dist(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist(0,1) = %v", got)
	}
	if got := in.Length(Link{From: 0, To: 2}); math.Abs(got-10) > 1e-12 {
		t.Errorf("Length = %v", got)
	}
	if in.Point(1) != pts[1] {
		t.Errorf("Point(1) = %v", in.Point(1))
	}
	if len(in.Points()) != 3 {
		t.Errorf("Points len = %d", len(in.Points()))
	}
}

func TestDeltaCached(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 9, Y: 0}}
	in := MustInstance(pts, DefaultParams())
	want := 9.0
	if got := in.Delta(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Delta = %v, want %v", got, want)
	}
	// Second call must hit the cache and return the same value.
	if got := in.Delta(); math.Abs(got-want) > 1e-12 {
		t.Errorf("cached Delta = %v, want %v", got, want)
	}
}

func TestUpsilon(t *testing.T) {
	tests := []struct {
		n     int
		delta float64
		min   float64
		max   float64
	}{
		{2, 1, 1, 1.01},                 // log₂2 = 1, loglog term 0
		{1024, 2, 10, 10.01},            // log₂1024 = 10
		{1024, 65536, 14, 14.01},        // + log₂log₂65536 = 4
		{1, 1, 1, 1.01},                 // clamped
		{16, 1 << 20, 4 + 4.3, 4 + 4.4}, // log₂20 ≈ 4.32
	}
	for _, tc := range tests {
		got := Upsilon(tc.n, tc.delta)
		if got < tc.min || got > tc.max {
			t.Errorf("Upsilon(%d, %v) = %v, want in [%v,%v]", tc.n, tc.delta, got, tc.min, tc.max)
		}
	}
}

// randomInstance builds n random points with minimum distance ≥ 1 by
// rejection sampling on a span×span square.
func randomInstance(t testing.TB, rng *rand.Rand, n int, span float64) *Instance {
	t.Helper()
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		cand := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return MustInstance(pts, DefaultParams())
}
